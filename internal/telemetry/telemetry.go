// Package telemetry is the unified observability layer of the assignment
// engine: hierarchical spans (trace.go) feeding pluggable sinks — an
// in-memory ring, JSON lines, and a Chrome trace_event exporter — plus an
// atomic metrics registry (metrics.go) of counters, gauges and log-bucket
// histograms, exported as Prometheus text, expvar JSON and a human dump,
// and served live over HTTP next to net/http/pprof (http.go).
//
// The zero-overhead contract: every entry point is nil-safe. A nil
// *Recorder yields nil spans and nil instruments whose methods are no-ops,
// so engine code is instrumented unconditionally and the disabled path
// costs one pointer test per call site — no allocations, no atomics, no
// time reads (benchmarked by BenchmarkAssignTelemetry and gated by the
// steady-state allocs/op baseline).
package telemetry

import (
	"context"
	"io"
	"sync"
	"time"
)

// Metric names of the engine catalogue (see DESIGN §10 for types, labels
// and meanings). Keeping them in one place makes the catalogue greppable
// and the names consistent across the engine, the CLIs and the docs.
const (
	// Pipeline volume.
	MInstructions  = "parmem_instructions_total"         // counter: long instruction words assigned
	MConflictNodes = "parmem_conflict_graph_nodes_total" // counter: conflict-graph nodes built
	MConflictEdges = "parmem_conflict_graph_edges_total" // counter: conflict-graph edges built

	// Decomposition and coloring.
	MAtoms        = "parmem_atoms_total"          // counter: atoms decomposed
	MAtomSizeMax  = "parmem_atom_size_max"        // gauge (high-water): largest atom seen
	MAtomSize     = "parmem_atom_size"            // histogram: nodes per atom
	MColorings    = "parmem_atom_colorings_total" // counter: atom coloring runs
	MUnassigned   = "parmem_unassigned_values"    // histogram: V_unassigned size per phase
	MRepairRounds = "parmem_repair_rounds_total"  // counter: conflict-repair re-duplication rounds

	// Duplication.
	MCopiesPlaced = "parmem_copies_placed_total" // counter{method}: extra copies placed
	MDegradations = "parmem_degradations_total"  // counter{fallback}: budget-exhaustion fallbacks

	// Budget.
	MBudgetNodes = "parmem_budget_nodes_spent_total" // counter: search nodes charged to meters

	// Incremental recompilation.
	MIncrDirty  = "parmem_incremental_dirty_components_total"  // counter: components recomputed by delta runs
	MIncrReused = "parmem_incremental_reused_components_total" // counter: components stitched from prior results
	MIncrFull   = "parmem_incremental_full_recompiles_total"   // counter: delta runs that fell back to a full recompile

	// Phase timing.
	MPhaseMicros = "parmem_phase_duration_us" // histogram{phase}: wall time per assignment phase

	// Allocation cache (scraped from alloccache.Stats by a collector).
	MCacheHits    = "parmem_cache_hits_total"   // counter{level}
	MCacheMisses  = "parmem_cache_misses_total" // counter{level}
	MCacheEntries = "parmem_cache_entries"      // gauge: resident entries

	// Scratch arenas (scraped from arena.ReadStats by a collector).
	MArenaGets        = "parmem_arena_gets_total"         // counter: buffers borrowed
	MArenaPuts        = "parmem_arena_puts_total"         // counter: buffers recycled
	MArenaZeroedBytes = "parmem_arena_zeroed_bytes_total" // counter: bytes zeroed for reuse
	MArenaPoolGets    = "parmem_arena_pool_gets_total"    // counter: Scratches drawn from the global pool
	MArenaShardGets   = "parmem_arena_shard_gets_total"   // counter: Scratches handed out as worker shards
	MArenaShardResets = "parmem_arena_shard_resets_total" // counter: per-item reuses of a worker shard

	// Worker pools and batching.
	MPoolBusyWorkers = "parmem_pool_busy_workers"     // gauge: goroutines currently running engine work
	MPoolBusyNanos   = "parmem_pool_busy_nanos_total" // counter: summed busy wall time (utilization numerator)
	MBatchInFlight   = "parmem_batch_inflight"        // gauge: batch items currently compiling
	MBatchItems      = "parmem_batch_items_total"     // counter: batch items started

	// Server (parmemd): connection, admission and drain health.
	MServerConnsOpen   = "parmem_server_conns_open"       // gauge: connections currently open
	MServerConnsTotal  = "parmem_server_conns_total"      // counter: connections accepted since start
	MServerRequests    = "parmem_server_requests_total"   // counter{op,code}: requests answered, by op and response code
	MServerInFlight    = "parmem_server_inflight"         // gauge: requests currently holding an admission slot
	MServerQueueDepth  = "parmem_server_queue_depth"      // gauge: requests waiting in the admission queue
	MServerShed        = "parmem_server_shed_total"       // counter{reason}: requests shed (queue_full, per_conn, draining)
	MServerBadFrames   = "parmem_server_bad_frames_total" // counter{kind}: malformed/oversized/truncated frames rejected
	MServerReqMicros   = "parmem_server_request_us"       // histogram{op}: request wall time, accept-to-response-written
	MServerQueueWaitUs = "parmem_server_queue_wait_us"    // histogram: admission queue wait per admitted request
	MServerDrainMicros = "parmem_server_drain_us"         // gauge: wall time of the last graceful drain

	// Flight recorder (parmemd): always-on anomaly capture.
	MServerFlightCaptures = "parmem_server_flight_captures_total" // counter{reason}: flight captures written (slow, shed, degraded, internal)
	MServerFlightDropped  = "parmem_server_flight_dropped_total"  // counter{reason}: triggers suppressed by throttling or spool errors

	// Persistent disk cache tier (scraped from diskcache.Stats by a collector).
	MDiskHits        = "parmem_diskcache_hits_total"         // counter: records served from the log
	MDiskMisses      = "parmem_diskcache_misses_total"       // counter: lookups the log could not serve
	MDiskPuts        = "parmem_diskcache_puts_total"         // counter: records appended
	MDiskDroppedPuts = "parmem_diskcache_dropped_puts_total" // counter: writes dropped (full queue / read-only)
	MDiskCorruptGets = "parmem_diskcache_corrupt_gets_total" // counter: reads rejected by CRC re-verification
	MDiskCompactions = "parmem_diskcache_compactions_total"  // counter: log compactions completed
	MDiskRecords     = "parmem_diskcache_records"            // gauge: live records indexed
	MDiskBytes       = "parmem_diskcache_bytes"              // gauge: log file size

	// Gateway (parmemgw): routing, backend health and failover.
	MGatewayConnsOpen = "parmem_gateway_conns_open"      // gauge: client connections currently open
	MGatewayRequests  = "parmem_gateway_requests_total"  // counter{backend,code}: requests forwarded, by backend and response code
	MGatewayFailovers = "parmem_gateway_failovers_total" // counter{backend}: requests re-routed off an unhealthy backend
	MGatewayBackendUp = "parmem_gateway_backend_up"      // gauge{backend}: 1 when the prober last saw the backend healthy
	MGatewayReqMicros = "parmem_gateway_request_us"      // histogram{op}: request wall time through the gateway
)

// metricHelp is the HELP text attached to each family on first registration.
var metricHelp = map[string]string{
	MInstructions:     "Long instruction words run through memory-module assignment.",
	MConflictNodes:    "Conflict-graph nodes built across all phases.",
	MConflictEdges:    "Conflict-graph edges built across all phases.",
	MAtoms:            "Atoms produced by clique-separator decomposition.",
	MAtomSizeMax:      "Largest atom (node count) seen by this process.",
	MAtomSize:         "Distribution of atom sizes (nodes per atom).",
	MColorings:        "Urgency-coloring runs over individual atoms.",
	MUnassigned:       "Distribution of V_unassigned sizes per assignment phase.",
	MRepairRounds:     "Conflict-repair rounds that re-ran duplication after forced replication.",
	MCopiesPlaced:     "Extra value copies placed by the duplication strategy.",
	MDegradations:     "Budget-exhaustion degradations, by fallback strategy taken.",
	MBudgetNodes:      "Search-budget nodes charged across all assignment phases.",
	MIncrDirty:        "Conflict components recomputed by incremental delta runs.",
	MIncrReused:       "Conflict components reused from a prior result by incremental delta runs.",
	MIncrFull:         "Incremental delta runs that fell back to a full recompile.",
	MPhaseMicros:      "Wall time per assignment phase, microseconds.",
	MCacheHits:        "Allocation-cache hits, by memo level.",
	MCacheMisses:      "Allocation-cache misses, by memo level.",
	MCacheEntries:     "Allocation-cache resident entries.",
	MArenaGets:        "Scratch-arena buffers borrowed.",
	MArenaPuts:        "Scratch-arena buffers recycled back to free lists.",
	MArenaZeroedBytes: "Bytes zeroed when handing out scratch buffers.",
	MArenaPoolGets:    "Scratches drawn from the global arena pool.",
	MArenaShardGets:   "Scratches handed out as per-worker arena shards.",
	MArenaShardResets: "Per-item reuses of a worker's arena shard.",
	MPoolBusyWorkers:  "Engine worker goroutines currently busy.",
	MPoolBusyNanos:    "Summed wall time engine workers spent busy, nanoseconds.",
	MBatchInFlight:    "Batch items currently being compiled.",
	MBatchItems:       "Batch items started.",

	MServerConnsOpen:   "parmemd connections currently open.",
	MServerConnsTotal:  "parmemd connections accepted since process start.",
	MServerRequests:    "parmemd requests answered, by op and response code.",
	MServerInFlight:    "parmemd requests currently holding an admission slot.",
	MServerQueueDepth:  "parmemd requests waiting in the admission queue.",
	MServerShed:        "parmemd requests shed by admission control, by reason.",
	MServerBadFrames:   "parmemd malformed, oversized or truncated frames rejected, by kind.",
	MServerReqMicros:   "parmemd request wall time (frame read to response written), microseconds.",
	MServerQueueWaitUs: "parmemd admission queue wait per admitted request, microseconds.",
	MServerDrainMicros: "Wall time of the last parmemd graceful drain, microseconds.",

	MServerFlightCaptures: "parmemd flight captures written, by trigger reason.",
	MServerFlightDropped:  "parmemd flight triggers suppressed (throttled or spool write failed), by reason.",

	MDiskHits:        "Disk cache records served from the append log.",
	MDiskMisses:      "Disk cache lookups the append log could not serve.",
	MDiskPuts:        "Disk cache records appended to the log.",
	MDiskDroppedPuts: "Disk cache writes dropped (full write-behind queue or read-only store).",
	MDiskCorruptGets: "Disk cache reads rejected by CRC re-verification.",
	MDiskCompactions: "Disk cache log compactions completed.",
	MDiskRecords:     "Disk cache live records indexed.",
	MDiskBytes:       "Disk cache log file size in bytes.",

	MGatewayConnsOpen: "parmemgw client connections currently open.",
	MGatewayRequests:  "parmemgw requests forwarded, by backend and response code.",
	MGatewayFailovers: "parmemgw requests re-routed off an unhealthy backend.",
	MGatewayBackendUp: "Whether the parmemgw prober last saw the backend healthy.",
	MGatewayReqMicros: "parmemgw request wall time, microseconds.",
}

// Recorder bundles a Tracer and a metrics Registry — the single handle the
// engine threads through Options.Telemetry. A nil Recorder is fully valid
// and turns every operation into a no-op.
type Recorder struct {
	tracer *Tracer
	reg    *Registry

	mu         sync.Mutex
	collectors map[string]func(*Registry)
	corder     []string
}

// New returns a Recorder emitting spans to the given sinks, with an empty
// metrics registry pre-described with the engine catalogue's help text.
func New(sinks ...Sink) *Recorder {
	return &Recorder{tracer: NewTracer(sinks...), reg: NewRegistry()}
}

// NewClock is New with an injected monotonic clock for deterministic tests.
func NewClock(clock func() time.Duration, sinks ...Sink) *Recorder {
	return &Recorder{tracer: NewTracerClock(clock, sinks...), reg: NewRegistry()}
}

// StartSpan begins a span under parent (nil = root). Nil-safe.
func (r *Recorder) StartSpan(name string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	return r.tracer.StartSpan(name, parent)
}

// StartSpanContext begins a span that joins any distributed trace carried by
// ctx (see Tracer.StartSpanContext). Nil-safe before ctx is touched, so the
// disabled path stays allocation-free.
func (r *Recorder) StartSpanContext(ctx context.Context, name string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	return r.tracer.StartSpanContext(ctx, name, parent)
}

// StartSpanTrace begins a root span joining tc's trace (see
// Tracer.StartSpanTrace). Nil-safe.
func (r *Recorder) StartSpanTrace(name string, tc TraceContext) *Span {
	if r == nil {
		return nil
	}
	return r.tracer.StartSpanTrace(name, tc)
}

// ProcID returns the tracer's process id. Nil-safe.
func (r *Recorder) ProcID() uint64 {
	if r == nil {
		return 0
	}
	return r.tracer.ProcID()
}

// AddSink attaches an additional span sink at runtime. Nil-safe.
func (r *Recorder) AddSink(s Sink) {
	if r == nil {
		return
	}
	r.tracer.AddSink(s)
}

// Counter resolves a counter by name and label pairs. Nil-safe: a nil
// Recorder returns a nil (no-op) counter.
func (r *Recorder) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	c := r.reg.Counter(name, labels...)
	r.reg.SetHelp(name, metricHelp[name])
	return c
}

// Gauge resolves a gauge by name and label pairs. Nil-safe.
func (r *Recorder) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.reg.Gauge(name, labels...)
	r.reg.SetHelp(name, metricHelp[name])
	return g
}

// Histogram resolves a histogram by name and label pairs. Nil-safe.
func (r *Recorder) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.reg.Histogram(name, labels...)
	r.reg.SetHelp(name, metricHelp[name])
	return h
}

// Registry exposes the underlying metrics registry (nil on a nil Recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer exposes the underlying tracer (nil on a nil Recorder).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// OpenSpans returns the number of unended spans. Nil-safe.
func (r *Recorder) OpenSpans() int64 {
	if r == nil {
		return 0
	}
	return r.tracer.OpenSpans()
}

// AddCollector registers (or replaces, by name) a scrape hook that mirrors
// externally maintained counters into the registry. Collectors run before
// every export — the Prometheus endpoint, the text dump and the expvar
// snapshot — so scraped values are as fresh as the export. Nil-safe.
func (r *Recorder) AddCollector(name string, fn func(*Registry)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.collectors == nil {
		r.collectors = map[string]func(*Registry){}
	}
	if _, ok := r.collectors[name]; !ok {
		r.corder = append(r.corder, name)
	}
	r.collectors[name] = fn
}

// runCollectors invokes every collector in registration order.
func (r *Recorder) runCollectors() {
	if r == nil {
		return
	}
	r.mu.Lock()
	fns := make([]func(*Registry), 0, len(r.corder))
	for _, n := range r.corder {
		fns = append(fns, r.collectors[n])
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn(r.reg)
	}
}

// WritePrometheus scrapes the collectors and writes the registry in
// Prometheus text exposition format. Nil-safe.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()
	return r.reg.WritePrometheus(w)
}

// WriteOpenMetrics scrapes the collectors and writes the registry in
// OpenMetrics 1.0 text format (exemplars included). Nil-safe.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()
	return r.reg.WriteOpenMetrics(w)
}

// WriteMetricsText scrapes the collectors and writes the human-readable
// metrics dump. Nil-safe.
func (r *Recorder) WriteMetricsText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()
	return r.reg.WriteText(w)
}

// MetricsSnapshot scrapes the collectors and returns the flat series map
// (the /debug/vars payload). Nil-safe.
func (r *Recorder) MetricsSnapshot() map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.runCollectors()
	return r.reg.Snapshot()
}
