package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the Chrome exporter golden file")

// goldenSpans drives a fixed span tree through a deterministic clock: a
// compile root on the pipeline lane, an assign phase under it, and two atom
// colorings on worker lanes — the shape a real parallel run produces.
func goldenSpans(rec *Recorder) {
	root := rec.StartSpan("compile", nil)
	assign := rec.StartSpan("assign", root)
	assign.SetAttrStr("strategy", "STOR1")
	assign.SetAttr("k", 8)
	a1 := rec.StartSpan("atom", assign)
	a1.SetLane(1)
	a1.SetAttr("size", 12)
	a2 := rec.StartSpan("atom", assign)
	a2.SetLane(2)
	a2.SetAttr("size", 7)
	a2.SetAttrStr("cache", "hit")
	a2.End()
	a1.End()
	assign.SetAttr("unassigned", 0)
	assign.End()
	root.End()
}

func TestChromeGolden(t *testing.T) {
	sink := NewChromeSink()
	rec := NewClock(fakeClock(), sink)
	goldenSpans(rec)

	var buf bytes.Buffer
	if err := sink.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// A second Write over the same spans must be byte-identical: field
	// order is fixed by structs and events are fully sorted.
	var again bytes.Buffer
	if err := sink.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("Chrome exporter output is not deterministic across writes")
	}
}

// TestChromeWellFormed checks the structural contract independent of exact
// bytes: valid JSON, one process, metadata naming every lane, monotonic
// timestamps, and parent references pointing at emitted spans.
func TestChromeWellFormed(t *testing.T) {
	sink := NewChromeSink()
	rec := NewClock(fakeClock(), sink)
	goldenSpans(rec)

	var buf bytes.Buffer
	if err := sink.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	lanes := map[int64]string{}
	ids := map[float64]bool{}
	lastTs := int64(-1)
	sawProcess := false
	for _, ev := range doc.TraceEvents {
		if ev.Pid != chromePid {
			t.Fatalf("event %q has pid %d, want %d", ev.Name, ev.Pid, chromePid)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				sawProcess = true
			}
			if ev.Name == "thread_name" {
				lanes[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			if ev.Ts < lastTs {
				t.Fatalf("timestamps not monotonic: %d after %d", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if _, ok := lanes[ev.Tid]; !ok {
				t.Fatalf("event %q on unnamed lane %d", ev.Name, ev.Tid)
			}
			ids[ev.Args["id"].(float64)] = true
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if !sawProcess {
		t.Fatal("missing process_name metadata")
	}
	if lanes[0] != "pipeline" || lanes[1] != "worker-1" || lanes[2] != "worker-2" {
		t.Fatalf("lane names = %v", lanes)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if p, ok := ev.Args["parent"]; ok && !ids[p.(float64)] {
			t.Fatalf("event %q references unknown parent %v", ev.Name, p)
		}
	}
}
