package telemetry

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// This file is the live introspection endpoint: a tiny HTTP server exposing
//
//	/metrics      Prometheus text exposition (hand-rolled, no dependency)
//	/debug/vars   expvar JSON (process-wide expvars plus the metric series)
//	/debug/pprof  net/http/pprof, for live profiling of long batch runs
//
// It exists so a heavy -batch run can be watched while it executes: scrape
// cache hit rates and worker utilization, or attach `go tool pprof` without
// restarting anything.

// expvarRecorder is the recorder /debug/vars snapshots. One process-wide
// slot: expvar.Publish panics on duplicate names, so the variable is
// published once and reads whatever recorder served most recently.
var (
	expvarRecorder atomic.Pointer[Recorder]
	expvarOnce     sync.Once
)

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("parmem", expvar.Func(func() any {
			return expvarRecorder.Load().MetricsSnapshot()
		}))
	})
}

// ErrAddrInUse is wrapped by Serve's error when the listen address is
// already bound by another process (or another Serve). Callers that run a
// telemetry endpoint as a best-effort sidecar — the CLIs, parmemd — test
// for it with errors.Is to distinguish "someone else owns that port"
// (report and continue) from a genuinely unusable address (fail).
var ErrAddrInUse = errors.New("telemetry: address already in use")

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Handle mounts an additional handler on the endpoint's mux — the hook
// parmemd uses to serve /healthz and /readyz alongside /metrics.
// http.ServeMux.Handle is safe to call after serving has started.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Serve starts the introspection endpoint on addr ("host:port"; port 0
// picks a free one) and returns once it is listening. The caller owns the
// returned Server and closes it when done; serving errors after a clean
// start are discarded (the endpoint is best-effort observability, not a
// correctness surface). Returns an error only if the listener cannot bind
// or the Recorder is nil; an already-bound address comes back wrapping
// ErrAddrInUse so callers can tell it apart from other bind failures.
func (r *Recorder) Serve(addr string) (*Server, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: cannot serve a nil recorder")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("%w: %v", ErrAddrInUse, err)
		}
		return nil, err
	}
	expvarRecorder.Store(r)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// Content negotiation: OpenMetrics when the scraper asks for it
		// (exemplar lines are only spec-valid there), Prometheus text 0.0.4
		// otherwise. Prometheus itself sends both in its Accept header with
		// OpenMetrics preferred, so a substring test picks the right branch.
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		// expvar.Handler is unexported-route-coupled; render the same JSON
		// shape by hand so the route works on this mux.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprint(w, ",")
			}
			first = false
			key, _ := json.Marshal(kv.Key)
			fmt.Fprintf(w, "\n%s: %s", key, kv.Value.String())
		})
		fmt.Fprint(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed via Server.Close
	return &Server{ln: ln, srv: srv, mux: mux}, nil
}
