package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// ChromeSink collects spans and writes them as a Chrome trace_event JSON
// document loadable in chrome://tracing and Perfetto. Spans become "X"
// (complete) events; each lane becomes a thread, named through "M"
// (metadata) events, so worker-pool activity renders as parallel tracks.
type ChromeSink struct {
	mu    sync.Mutex
	spans []*Span
}

// NewChromeSink returns an empty collector.
func NewChromeSink() *ChromeSink { return &ChromeSink{} }

// SpanEnd implements Sink.
func (c *ChromeSink) SpanEnd(s *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// chromeEvent is one trace_event record. Field order is fixed by the struct
// (and args keys are sorted by encoding/json), so output is byte-stable for
// a given span set — the golden-file test depends on that.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"` // pointer so dur 0 still prints for X events
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the document wrapper Perfetto and chrome://tracing accept.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const chromePid = 1

// Write renders the collected spans as a trace_event document. Events are
// sorted by timestamp (then span id), so ts is monotonically non-decreasing
// — some viewers require it and the tests assert it. Write may be called
// while spans are still arriving; it snapshots the current set.
func (c *ChromeSink) Write(w io.Writer) error {
	c.mu.Lock()
	spans := make([]*Span, len(c.spans))
	copy(spans, c.spans)
	c.mu.Unlock()

	lanes := map[int64]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	laneIDs := make([]int64, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })

	events := make([]chromeEvent, 0, len(spans)+len(laneIDs)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "parmem"},
	})
	for _, l := range laneIDs {
		name := "pipeline"
		if l != 0 {
			name = laneName(l)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: l,
			Args: map[string]any{"name": name},
		})
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	for _, s := range spans {
		dur := s.Dur.Microseconds()
		args := attrMap(s.Attrs)
		if s.ParentID != 0 {
			if args == nil {
				args = map[string]any{}
			}
			args["parent"] = s.ParentID
		}
		if args == nil {
			args = map[string]any{}
		}
		args["id"] = s.ID
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "parmem", Ph: "X",
			Ts: s.Start.Microseconds(), Dur: &dur,
			Pid: chromePid, Tid: s.Lane, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeDoc{DisplayTimeUnit: "ms", TraceEvents: events})
}

// laneName renders a worker lane's thread name.
func laneName(l int64) string {
	// Small positive lanes only; avoid fmt to keep the import set tight.
	digits := [20]byte{}
	i := len(digits)
	n := l
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	return "worker-" + string(digits[i:])
}

// WriteFile writes the document to path.
func (c *ChromeSink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
