package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// expositionRegistry builds a fixed registry covering every sample shape:
// labeled and unlabeled counters, a gauge, and histograms with and without
// exemplars.
func expositionRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("parmem_requests_total", "op", "assign")
	c.Add(41)
	c.Inc()
	reg.SetHelp("parmem_requests_total", "Requests answered.")
	reg.Counter("parmem_errors_total").Add(3)
	reg.Gauge("parmem_conns_open").Set(7)
	reg.SetHelp("parmem_conns_open", "Connections currently open.")

	h := reg.Histogram("parmem_request_us", "op", "assign")
	h.ObserveExemplar(3, "0123456789abcdef0123456789abcdef")
	h.ObserveExemplar(900, "fedcba9876543210fedcba9876543210")
	h.Observe(17) // no exemplar: bucket line must stay bare
	reg.SetHelp("parmem_request_us", "Request wall time, microseconds.")
	reg.Histogram("parmem_queue_us").Observe(5)
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from %s (run with -update if intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestExpositionGolden pins both exposition formats byte-for-byte: the
// Prometheus text 0.0.4 fallback and the OpenMetrics 1.0 form with
// exemplars and the # EOF terminator.
func TestExpositionGolden(t *testing.T) {
	reg := expositionRegistry()

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prometheus_golden.txt", prom.Bytes())

	var om bytes.Buffer
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "openmetrics_golden.txt", om.Bytes())

	// Structural invariants beyond the bytes.
	if strings.Contains(prom.String(), "# EOF") {
		t.Fatal("Prometheus exposition must not carry the OpenMetrics EOF")
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatal("OpenMetrics exposition must end with # EOF")
	}
	if strings.Contains(om.String(), "# TYPE parmem_requests_total") {
		t.Fatal("OpenMetrics counter family name must drop the _total suffix")
	}
	if !strings.Contains(om.String(), `parmem_requests_total{op="assign"} 42`) {
		t.Fatal("OpenMetrics counter sample must keep the _total suffix")
	}
	if !strings.Contains(om.String(), `# {trace_id="0123456789abcdef0123456789abcdef"} 3`) {
		t.Fatal("OpenMetrics bucket missing its exemplar")
	}
	if strings.Contains(prom.String(), "trace_id=") {
		t.Fatal("Prometheus 0.0.4 exposition must not carry exemplars")
	}
}

// TestMetricsContentNegotiation checks /metrics: the default is Prometheus
// text 0.0.4, and an Accept header asking for OpenMetrics switches both the
// body and the advertised content type.
func TestMetricsContentNegotiation(t *testing.T) {
	rec := New()
	rec.Counter("parmem_server_requests_total", "op", "ping").Inc()
	rec.Histogram("parmem_server_request_us", "op", "ping").ObserveExemplar(9, "0123456789abcdef0123456789abcdef")

	srv, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(accept string) (string, string) {
		req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ctype, body := get("")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("default content type = %q, want text/plain", ctype)
	}
	if strings.Contains(body, "# EOF") || strings.Contains(body, "trace_id=") {
		t.Fatal("default exposition leaked OpenMetrics syntax")
	}

	ctype, body = get("application/openmetrics-text; version=1.0.0")
	if ctype != OpenMetricsContentType {
		t.Fatalf("negotiated content type = %q, want %q", ctype, OpenMetricsContentType)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("negotiated OpenMetrics body missing # EOF")
	}
	if !strings.Contains(body, `trace_id="0123456789abcdef0123456789abcdef"`) {
		t.Fatal("negotiated OpenMetrics body missing the exemplar")
	}
}
