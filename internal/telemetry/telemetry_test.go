package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- instruments ---

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Sync(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Sync, Value = %d, want 42", got)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Max(10)
	g.Max(7) // lower: must not regress the high-water mark
	if got := g.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("after Add(-4), Value = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i has inclusive upper bound 2^i: 0 and 1 land in bucket 0,
	// 3 in bucket 2 (le 4), 1<<20 in the last finite bucket, anything
	// larger in +Inf.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 20, 20}, {1<<20 + 1, histBuckets - 1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	for i, c := range cases {
		_ = i
		if got := h.buckets[c.bucket].Load(); got == 0 {
			t.Errorf("observe(%d): bucket %d empty", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(cases))
	}
}

// --- nil safety and the zero-overhead contract ---

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	sp := rec.StartSpan("x", nil)
	if sp != nil {
		t.Fatal("nil recorder must give a nil span")
	}
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	sp.SetLane(3)
	sp.End()
	rec.Counter("c").Inc()
	rec.Gauge("g").Set(1)
	rec.Histogram("h").Observe(1)
	rec.AddCollector("x", func(*Registry) {})
	if rec.OpenSpans() != 0 {
		t.Fatal("nil recorder must report 0 open spans")
	}
	if err := rec.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetricsText(io.Discard); err != nil {
		t.Fatal(err)
	}
	if len(rec.MetricsSnapshot()) != 0 {
		t.Fatal("nil recorder snapshot must be empty")
	}
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	reg.SetHelp("c", "x")
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestNilRecorderZeroAllocs pins the disabled path's cost: the exact call
// sequence the engine runs per phase must not allocate when telemetry is
// off. This is the provable half of the zero-overhead contract (the
// steady-state allocs/op gate is the end-to-end half).
func TestNilRecorderZeroAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		sp := rec.StartSpan("phase", nil)
		sp.SetAttr("nodes", 7)
		sp.SetAttrStr("method", "backtrack")
		sp.SetLane(1)
		rec.Counter(MColorings).Inc()
		rec.Gauge(MPoolBusyWorkers).Add(1)
		rec.Histogram(MUnassigned).Observe(3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %.0f per op, want 0", allocs)
	}
}

// --- concurrency: exact totals and well-formed span trees under -race ---

func TestConcurrentRecorder(t *testing.T) {
	const workers = 8
	const perWorker = 500
	ring := NewRingSink(workers*perWorker + workers + 1)
	rec := New(ring)

	root := rec.StartSpan("root", nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := int64(w + 1)
			parent := rec.StartSpan("worker", root)
			parent.SetLane(lane)
			for i := 0; i < perWorker; i++ {
				sp := rec.StartSpan("item", parent)
				sp.SetAttr("i", int64(i))
				rec.Counter(MColorings).Inc()
				rec.Counter(MCopiesPlaced, "method", "backtrack").Add(2)
				rec.Gauge(MPoolBusyWorkers).Add(1)
				rec.Histogram(MAtomSize).Observe(int64(i % 32))
				rec.Gauge(MPoolBusyWorkers).Add(-1)
				sp.End()
			}
			parent.End()
		}(w)
	}
	wg.Wait()
	root.End()

	if got := rec.Counter(MColorings).Value(); got != workers*perWorker {
		t.Fatalf("colorings = %d, want %d", got, workers*perWorker)
	}
	if got := rec.Counter(MCopiesPlaced, "method", "backtrack").Value(); got != 2*workers*perWorker {
		t.Fatalf("copies = %d, want %d", got, 2*workers*perWorker)
	}
	if got := rec.Gauge(MPoolBusyWorkers).Value(); got != 0 {
		t.Fatalf("busy workers = %d, want 0 after quiesce", got)
	}
	if got := rec.Histogram(MAtomSize).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if open := rec.OpenSpans(); open != 0 {
		t.Fatalf("open spans = %d, want 0", open)
	}

	// Well-formed tree: every span's ParentID must reference a span that
	// was also emitted, ids are unique, and exactly one root exists.
	spans := ring.Spans()
	wantSpans := 1 + workers + workers*perWorker
	if len(spans) != wantSpans {
		t.Fatalf("ring has %d spans, want %d", len(spans), wantSpans)
	}
	ids := map[uint64]bool{}
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
	roots := 0
	for _, s := range spans {
		if s.ParentID == 0 {
			roots++
			continue
		}
		if !ids[s.ParentID] {
			t.Fatalf("span %d (%s) references unknown parent %d", s.ID, s.Name, s.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("got %d roots, want 1", roots)
	}
}

// --- registry and exposition ---

func TestPrometheusExposition(t *testing.T) {
	rec := New()
	rec.Counter(MCacheHits, "level", "assign").Add(3)
	rec.Counter(MCacheHits, "level", "atomcolor").Add(5)
	rec.Gauge(MBatchInFlight).Set(2)
	h := rec.Histogram(MPhaseMicros, "phase", "stor1")
	h.Observe(1)
	h.Observe(3)
	h.Observe(1 << 30)

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP parmem_cache_hits_total ",
		"# TYPE parmem_cache_hits_total counter",
		`parmem_cache_hits_total{level="assign"} 3`,
		`parmem_cache_hits_total{level="atomcolor"} 5`,
		"# TYPE parmem_batch_inflight gauge",
		"parmem_batch_inflight 2",
		"# TYPE parmem_phase_duration_us histogram",
		`parmem_phase_duration_us_bucket{phase="stor1",le="1"} 1`,
		`parmem_phase_duration_us_bucket{phase="stor1",le="4"} 2`,
		`parmem_phase_duration_us_bucket{phase="stor1",le="+Inf"} 3`,
		`parmem_phase_duration_us_count{phase="stor1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative and non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "parmem_phase_duration_us_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		last = v
	}
}

func TestLabelEscaping(t *testing.T) {
	got := renderLabels([]string{"k", `a"b\c` + "\n"})
	want := `k="a\"b\\c\n"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
}

func TestOddLabelsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	New().Counter("x", "only-key")
}

func TestKindClashPanics(t *testing.T) {
	rec := New()
	rec.Counter("parmem_clash_test")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	rec.Gauge("parmem_clash_test")
}

func TestSnapshotAndText(t *testing.T) {
	rec := New()
	rec.Counter(MAtoms).Add(7)
	rec.Histogram(MAtomSize).Observe(4)
	snap := rec.MetricsSnapshot()
	if snap["parmem_atoms_total"] != 7 {
		t.Fatalf("snapshot counter = %d, want 7", snap["parmem_atoms_total"])
	}
	if snap["parmem_atom_size_count"] != 1 || snap["parmem_atom_size_sum"] != 4 {
		t.Fatalf("snapshot histogram = %v", snap)
	}
	var buf bytes.Buffer
	if err := rec.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "parmem_atom_size count=1 sum=4 mean=4.0") {
		t.Fatalf("text dump missing histogram line:\n%s", buf.String())
	}
}

func TestCollectors(t *testing.T) {
	rec := New()
	calls := []string{}
	rec.AddCollector("a", func(*Registry) { calls = append(calls, "a1") })
	rec.AddCollector("b", func(*Registry) { calls = append(calls, "b") })
	rec.AddCollector("a", func(*Registry) { calls = append(calls, "a2") }) // replaces, keeps position
	rec.WriteMetricsText(io.Discard)
	if got := strings.Join(calls, ","); got != "a2,b" {
		t.Fatalf("collector calls = %q, want \"a2,b\"", got)
	}
}

// --- sinks ---

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(4)
	rec := New(ring)
	for i := 0; i < 6; i++ {
		rec.StartSpan(fmt.Sprintf("s%d", i), nil).End()
	}
	spans := ring.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+2); s.Name != want {
			t.Fatalf("span[%d] = %s, want %s (oldest-first order)", i, s.Name, want)
		}
	}
	if ring.Total() != 6 {
		t.Fatalf("Total = %d, want 6", ring.Total())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	clock := fakeClock()
	rec := NewClock(clock, sink)
	root := rec.StartSpan("compile", nil)
	sp := rec.StartSpan("phase", root)
	sp.SetAttr("nodes", 12)
	sp.SetAttrStr("method", "hittingset")
	sp.End()
	root.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first struct {
		Name   string         `json:"name"`
		ID     uint64         `json:"id"`
		Parent uint64         `json:"parent"`
		Attrs  map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	// The child ends first, so it is the first line.
	if first.Name != "phase" || first.Parent == 0 {
		t.Fatalf("first line = %+v, want ended child with parent", first)
	}
	if first.Attrs["method"] != "hittingset" || first.Attrs["nodes"] != float64(12) {
		t.Fatalf("attrs = %v", first.Attrs)
	}
}

// fakeClock returns a deterministic monotonic clock advancing 10us per
// reading.
func fakeClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += 10 * time.Microsecond
		return t
	}
}

// --- HTTP endpoint ---

func TestServe(t *testing.T) {
	rec := New()
	rec.Counter(MInstructions).Add(9)
	srv, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "parmem_instructions_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	body, ctype = get("/debug/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("vars content-type = %q", ctype)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	pm, ok := vars["parmem"].(map[string]any)
	if !ok || pm["parmem_instructions_total"] != float64(9) {
		t.Fatalf("/debug/vars parmem = %v", vars["parmem"])
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

func TestServeNilRecorder(t *testing.T) {
	var rec *Recorder
	if _, err := rec.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("serving a nil recorder must fail")
	}
}

// TestServeAddrInUse checks that binding a taken port comes back as a
// distinguishable error, so callers can degrade gracefully instead of
// pattern-matching error strings.
func TestServeAddrInUse(t *testing.T) {
	rec := New()
	first, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	_, err = rec.Serve(first.Addr())
	if err == nil {
		t.Fatal("second Serve on the same address must fail")
	}
	if !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want errors.Is(err, ErrAddrInUse), got %v", err)
	}
}

// TestServerHandle checks that extra handlers (parmemd's /healthz and
// /readyz) can be mounted on a live telemetry endpoint.
func TestServerHandle(t *testing.T) {
	rec := New()
	srv, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.Handle("/custom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	resp, err := http.Get("http://" + srv.Addr() + "/custom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("/custom status = %d, want %d", resp.StatusCode, http.StatusTeapot)
	}
	// The stock endpoints still work alongside the custom one.
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d after Handle", resp.StatusCode)
	}
}
