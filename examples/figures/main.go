// Figures walks through the paper's worked examples (Figs. 1, 3, 5 and 8)
// using the abstract memory-module assignment API: instructions are plain
// operand sets, exactly as drawn in the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"parmem"
)

func main() {
	// ---- Fig. 1: three instructions over V1..V5, three modules. A
	// conflict-free assignment with single copies exists.
	fig1 := []parmem.Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}}
	report("Fig. 1", fig1, 3)

	// ---- §2: adding {V2 V4 V5} makes single copies impossible; the
	// paper resolves it with a second copy of V5. Adding {V1 V4 V5} forces
	// a third copy.
	report("Fig. 1 + {V2,V4,V5}", append(fig1, parmem.Instruction{2, 4, 5}), 3)
	report("Fig. 1 + {V2,V4,V5} + {V1,V4,V5}",
		append(fig1, parmem.Instruction{2, 4, 5}, parmem.Instruction{1, 4, 5}), 3)

	// ---- Fig. 3: six instructions forming a complete K5 conflict graph
	// with only three modules: two values must be removed during coloring.
	// The paper shows removal choice matters: its solution 1 ends with 8
	// total copies, solution 2 with 7.
	fig3 := []parmem.Instruction{
		{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5},
	}
	report("Fig. 3", fig3, 3)

	// ---- Fig. 5 demonstrates the urgency-driven coloring heuristic
	// itself: five values, three modules, one value left uncolored. The
	// figure's exact edge weights come from an instruction mix like this
	// one (V5 conflicts with everything, V1..V4 form a 3-colorable core).
	fig5 := []parmem.Instruction{
		{1, 2, 5}, {2, 3, 5}, {3, 4, 5}, {1, 4, 5}, {1, 2, 4}, {2, 3, 4},
	}
	report("Fig. 5 (reconstructed)", fig5, 3)

	// ---- Fig. 8: with four modules, V1..V3 and V5 pinned by coloring,
	// the four instructions force copies of V4 in three specific modules.
	// A bad placement order would need four copies; the placement
	// algorithm (paper Fig. 10) finds three.
	fig8 := []parmem.Instruction{
		{1, 2, 3, 5}, {4, 2, 3, 5}, {1, 2, 3, 4}, {4, 2, 1, 5},
	}
	report("Fig. 8", fig8, 4)
}

// report assigns storage for the instruction list and prints the paper's
// x/- module matrix.
func report(name string, instrs []parmem.Instruction, k int) {
	al, err := parmem.AssignValues(context.Background(), instrs,
		parmem.AssignConfig{K: k, Strategy: parmem.STOR1, Method: parmem.HittingSet})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%s  (k=%d, %d instructions)\n", name, k, len(instrs))
	maxV := 0
	for _, in := range instrs {
		for _, v := range in {
			if v > maxV {
				maxV = v
			}
		}
	}
	for v := 1; v <= maxV; v++ {
		set, ok := al.Copies[v]
		if !ok {
			continue
		}
		fmt.Printf("  V%d  ", v)
		for m := 0; m < k; m++ {
			if set.Has(m) {
				fmt.Print("x")
			} else {
				fmt.Print("-")
			}
		}
		fmt.Println()
	}
	fmt.Printf("  => %d single-copy, %d replicated, %d total copies\n\n",
		al.SingleCopy, al.MultiCopy, al.TotalCopies)

	// Double-check every instruction really is conflict-free.
	for i, in := range instrs {
		if !parmem.ConflictFree(in, al.Copies) {
			log.Fatalf("%s: instruction %d still conflicts", name, i)
		}
	}
}
