// FFT runs the paper's FFT benchmark end to end and contrasts array storage
// layouts: interleaved (the realistic assumption behind the paper's t_ave),
// skewed (the vector-oriented prior work the paper cites), and single-module
// (the t_max worst case).
package main

import (
	"context"
	"fmt"
	"log"

	"parmem"
)

func main() {
	src, err := parmem.BenchmarkSource("FFT")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	p, err := parmem.CompileCtx(ctx, src, parmem.Options{Modules: 8, Unroll: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT compiled: %d words, %d scalar values (%d replicated)\n\n",
		len(p.Sched.Words), p.Alloc.SingleCopy+p.Alloc.MultiCopy, p.Alloc.MultiCopy)

	layouts := []parmem.Layout{
		parmem.InterleavedLayout(8),
		parmem.SkewedLayout(8),
		parmem.SingleModuleLayout(0),
	}
	names := []string{"interleaved", "skewed", "single-module"}

	fmt.Printf("%-14s %10s %8s %9s\n", "array layout", "cycles", "stalls", "speedup")
	for i, lay := range layouts {
		res, err := p.RunCtx(ctx, parmem.RunOptions{Layout: lay})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10d %8d %8.2fx\n", names[i], res.Cycles, res.Stalls, res.Speedup())
	}

	// The analytic model of Table 2, independent of any concrete layout.
	res, err := p.RunCtx(ctx, parmem.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	times := p.AnalyzeTimes(res)
	fmt.Printf("\nanalytic transfer times: t_ave/t_min = %.2f, t_max/t_min = %.2f\n",
		times.RatioAve(), times.RatioMax())
	fmt.Println("p(i) — probability an instruction needs i operands from one module:")
	for i, prob := range p.PofI(res) {
		if prob > 1e-9 {
			fmt.Printf("  p(%d) = %.4f\n", i, prob)
		}
	}
}
