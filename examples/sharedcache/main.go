// Sharedcache demonstrates the paper's closing application (§3): on a
// shared-cache multiprocessor (the paper names the Alliant FX/8), multiple
// simultaneous hits on one cache serialize. For read-only shared data the
// compile-time techniques apply unchanged — predict co-accesses, color
// items onto caches, replicate the items that cannot be placed singly —
// and eliminate every predictable multi-hit.
package main

import (
	"fmt"
	"log"

	"parmem/internal/cache"
)

func main() {
	sys := cache.System{Caches: 8}
	// A skewed parallel table-lookup workload: 6 processors, 64 read-only
	// items, a few of them hot.
	tr := cache.SyntheticTrace(64, 6, 400, 123)

	paper, err := cache.Assign(tr, sys)
	if err != nil {
		log.Fatal(err)
	}

	placements := []struct {
		name string
		p    cache.Placement
	}{
		{"round-robin", cache.RoundRobin(tr, sys)},
		{"freq-balanced", cache.FrequencyBalanced(tr, sys)},
		{"paper (color+replicate)", paper},
	}

	fmt.Printf("%d steps, %d caches\n\n", len(tr), sys.Caches)
	fmt.Printf("%-24s %10s %12s %8s %12s\n",
		"placement", "multi-hit", "stall cycles", "copies", "replicated")
	for _, pl := range placements {
		st := cache.Simulate(tr, pl.p, sys)
		fmt.Printf("%-24s %10d %12d %8d %12d\n",
			pl.name, st.MultiHitSteps, st.StallCycles, st.Copies, st.ReplicatedItems)
	}
	fmt.Println("\nThe paper's technique removes every predictable multi-hit by")
	fmt.Println("replicating only the few read-only items that cannot be placed singly.")
}
