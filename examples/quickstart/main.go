// Quickstart: compile a small MPL program for a machine with 8 parallel
// memory modules, inspect the storage allocation, and run it on the
// simulated lock-step LIW machine.
package main

import (
	"context"
	"fmt"
	"log"

	"parmem"
)

const src = `
program quickstart;
var dot: float;
var a, b: array[32] of float;
begin
  -- fill two vectors
  for i := 0 to 31 do
    a[i] := i * 0.5;
    b[i] := 32 - i;
  end
  -- dot product
  dot := 0.0;
  for i := 0 to 31 do
    dot := dot + a[i] * b[i];
  end
end
`

func main() {
	// Compile: parse -> IR -> renaming -> LIW scheduling -> memory-module
	// assignment. Options{} uses the paper's machine: 8 modules, 8 units,
	// strategy STOR1, hitting-set duplication. The ctx bounds the whole
	// pipeline; context.Background() means "no deadline".
	ctx := context.Background()
	p, err := parmem.CompileCtx(ctx, src, parmem.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compiled %q: %d long instruction words\n", p.Func.Name, len(p.Sched.Words))
	fmt.Printf("allocation: %d values single-copy, %d replicated, %d atoms colored\n",
		p.Alloc.SingleCopy, p.Alloc.MultiCopy, p.Alloc.Atoms)

	// Execute on the machine model. Array elements are interleaved across
	// the modules; scalar fetches are conflict-free by construction.
	res, err := p.RunCtx(ctx, parmem.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dot, _ := res.Scalar("dot")
	fmt.Printf("dot product = %g\n", dot)
	fmt.Printf("executed %d words in %d cycles (%d stalls from array conflicts); speedup %.2fx over sequential\n",
		res.DynamicWords, res.Cycles, res.Stalls, res.Speedup())

	// The paper's Table 2 analysis: how much do the unpredictable array
	// accesses cost on top of a conflict-free program?
	times := p.AnalyzeTimes(res)
	fmt.Printf("transfer time: t_min=%.0f  t_ave=%.1f (x%.2f)  t_max=%.0f (x%.2f)\n",
		times.TMin, times.TAve, times.RatioAve(), times.TMax, times.RatioMax())
}
