// Sort compares the paper's three storage strategies (STOR1/STOR2/STOR3)
// and both duplication methods on the SORT (quicksort) benchmark: how the
// conflict-graph scope changes how many scalar values must be replicated.
package main

import (
	"context"
	"fmt"
	"log"

	"parmem"
)

func main() {
	src, err := parmem.BenchmarkSource("SORT")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("%-8s %-11s %8s %8s %8s %7s\n",
		"strategy", "method", "single", "multi", "copies", "atoms")
	for _, strat := range []parmem.Strategy{parmem.STOR1, parmem.STOR2, parmem.STOR3} {
		for _, meth := range []parmem.Method{parmem.HittingSet, parmem.Backtrack} {
			p, err := parmem.CompileCtx(ctx, src, parmem.Options{
				Modules:  8,
				Strategy: strat,
				Method:   meth,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Each variant must still sort correctly.
			res, err := p.RunCtx(ctx, parmem.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if v, _ := res.Scalar("top"); v != -1 {
				log.Fatalf("%v/%v: quicksort stack not drained (top=%v)", strat, meth, v)
			}
			fmt.Printf("%-8s %-11s %8d %8d %8d %7d\n",
				strat, meth, p.Alloc.SingleCopy, p.Alloc.MultiCopy,
				p.Alloc.TotalCopies, p.Alloc.Atoms)
		}
	}
	fmt.Println("\nThe paper's Table 1 shape: STOR1 replicates (almost) nothing;")
	fmt.Println("restricting the conflict graph (STOR2/STOR3) can only increase duplication.")
}
