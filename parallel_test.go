package parmem

// Tests for the parallel assignment engine: determinism (parallel output
// must be bit-identical to sequential), concurrent use of the public API
// against shared state (run these under -race: `make race` / `make check`),
// and the recoverPhase pass-through of already-typed internal errors.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// stripVolatile drops the fields that legitimately differ between runs
// (per-phase timings, node counts and cache flags); everything else must
// be bit-identical no matter how many workers ran.
func stripVolatile(al Allocation) Allocation {
	al.Phases = nil
	return al
}

// TestParallelAssignDeterminism feeds the same instruction lists through
// the sequential engine and through worker pools of several sizes; every
// allocation must be identical, for both duplication methods.
func TestParallelAssignDeterminism(t *testing.T) {
	inputs := map[string][]Instruction{
		"clusters": engineStressInstrs(8, 12, 5),
		"clique":   cliqueInstrs(14, 6),
		"figure3":  {{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5}},
	}
	for name, instrs := range inputs {
		for _, method := range []Method{HittingSet, Backtrack} {
			cfg := AssignConfig{K: 6, Method: method, Budget: Budget{MaxBacktrackNodes: -1}, Workers: 1}
			seq, err := AssignValues(context.Background(), instrs, cfg)
			if err != nil {
				t.Fatalf("%s/%v: sequential: %v", name, method, err)
			}
			if seq.Degraded {
				t.Fatalf("%s/%v: degraded under an unlimited budget", name, method)
			}
			for _, workers := range []int{0, 2, 3, 8} {
				cfg.Workers = workers
				par, err := AssignValues(context.Background(), instrs, cfg)
				if err != nil {
					t.Fatalf("%s/%v/workers=%d: %v", name, method, workers, err)
				}
				if !reflect.DeepEqual(stripVolatile(seq), stripVolatile(par)) {
					t.Errorf("%s/%v/workers=%d: allocation differs from sequential\nseq: %+v\npar: %+v",
						name, method, workers, stripVolatile(seq), stripVolatile(par))
				}
			}
		}
	}
}

// TestParallelCompileDeterminism compiles fuzz-corpus programs with the
// sequential and the parallel engine and compares the allocations — the
// whole-pipeline version of the determinism contract.
func TestParallelCompileDeterminism(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.gen()
		for _, opt := range []Options{
			{Modules: 8},
			{Modules: 8, Method: Backtrack, Unroll: 4},
			{Modules: 4, Strategy: STOR2},
		} {
			opt.Workers = 1
			ps, err := Compile(src, opt)
			if err != nil {
				t.Fatalf("seed %d: sequential compile: %v", seed, err)
			}
			opt.Workers = 4
			pp, err := Compile(src, opt)
			if err != nil {
				t.Fatalf("seed %d: parallel compile: %v", seed, err)
			}
			if !reflect.DeepEqual(stripVolatile(ps.Alloc), stripVolatile(pp.Alloc)) {
				t.Errorf("seed %d (%+v): parallel allocation differs from sequential", seed, opt)
			}
		}
	}
}

// TestConcurrentAssignSharedCache hammers AssignValues from many
// goroutines sharing one allocation cache (and, within each call, one
// budget meter across that call's worker pool). Run under -race this
// checks the engine's synchronization; functionally every goroutine must
// see the same allocation whether it hit or missed the cache.
func TestConcurrentAssignSharedCache(t *testing.T) {
	instrs := engineStressInstrs(6, 10, 5)
	cache := NewAllocCache(0)
	cfg := AssignConfig{K: 6, Method: Backtrack, Cache: cache}
	want, err := AssignValues(context.Background(), instrs, AssignConfig{K: 6, Method: Backtrack, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	results := make([]Allocation, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer func() { done <- i }()
			results[i], errs[i] = AssignValues(context.Background(), instrs, cfg)
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		got := stripVolatile(results[i])
		got.Atoms = want.Atoms // whole-assign cache hits skip recounting atoms
		if !reflect.DeepEqual(stripVolatile(want), got) {
			t.Errorf("goroutine %d: allocation differs from sequential baseline", i)
		}
	}
	if st := cache.Stats(); st.Hits+st.Misses == 0 {
		t.Error("shared cache was never consulted")
	}
}

// TestConcurrentCompileSharedCache compiles the same program from many
// goroutines sharing one cache — the compile-level analogue of the test
// above and the usage pattern of a build server.
func TestConcurrentCompileSharedCache(t *testing.T) {
	src, err := BenchmarkSource("SORT")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewAllocCache(0)
	base, err := Compile(src, Options{Modules: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	done := make(chan error)
	for i := 0; i < goroutines; i++ {
		go func() {
			p, err := CompileCtx(context.Background(), src, Options{Modules: 8, Cache: cache})
			if err == nil && !reflect.DeepEqual(base.Alloc.Copies, p.Alloc.Copies) {
				err = errors.New("allocation differs from the sequential baseline")
			}
			done <- err
		}()
	}
	for i := 0; i < goroutines; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestRecoverPhasePassthrough checks that recoverPhase hands an
// already-typed *InternalError through unchanged instead of wrapping it a
// second time: the inner boundary's Phase is the one naming the real
// failure point.
func TestRecoverPhasePassthrough(t *testing.T) {
	inner := &InternalError{Phase: "assign/stor1", Value: "invariant broken"}
	f := func() (err error) {
		defer recoverPhase("outer", &err)
		panic(inner)
	}
	err := f()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("got %T, want *InternalError", err)
	}
	if ie != inner {
		t.Errorf("recoverPhase re-wrapped the error: Phase=%q, want the inner error unchanged", ie.Phase)
	}

	g := func() (err error) {
		defer recoverPhase("outer", &err)
		panic("raw panic")
	}
	err = g()
	if !errors.As(err, &ie) || ie.Phase != "outer" {
		t.Errorf("raw panic: got %v, want *InternalError with Phase %q", err, "outer")
	}
}
