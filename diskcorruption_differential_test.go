package parmem

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parmem/internal/benchprog"
)

// Differential safety of the persistent cache tier, end to end: whatever
// happens to the bytes on disk — bit flips anywhere in the log, torn
// tails, a missing header — a compile over that directory must produce
// exactly the allocation a cold compile produces. Corruption is allowed
// to cost hits (the damaged records miss and the work is redone), never
// to change a result.

// compileCorpusCold compiles every benchmark program with no cache at
// all; the returned allocations are the ground truth the cached paths
// are held to. Workers:1 keeps the pipeline deterministic.
func compileCorpusCold(t *testing.T) []Allocation {
	t.Helper()
	out := make([]Allocation, len(benchprog.All()))
	for i, spec := range benchprog.All() {
		p, err := Compile(spec.Source, Options{Workers: 1})
		if err != nil {
			t.Fatalf("cold compile %s: %v", spec.Name, err)
		}
		out[i] = p.Alloc
	}
	return out
}

// compileCorpusWith compiles the corpus through the given store and
// checks every allocation against the cold ground truth.
func compileCorpusWith(t *testing.T, st CacheStore, cold []Allocation, label string) {
	t.Helper()
	for i, spec := range benchprog.All() {
		p, err := Compile(spec.Source, Options{Workers: 1, Store: st})
		if err != nil {
			t.Fatalf("%s: compile %s: %v", label, spec.Name, err)
		}
		got, want := p.Alloc, cold[i]
		got.Phases, want.Phases = nil, nil // wall-clock timings differ
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %s allocation differs from cold compile\ngot:  %+v\nwant: %+v",
				label, spec.Name, got, want)
		}
	}
}

// TestDiskWarmCorpusMatchesCold: the whole corpus compiled through a
// restarted store is served from disk and every allocation is identical
// to a cold compile.
func TestDiskWarmCorpusMatchesCold(t *testing.T) {
	cold := compileCorpusCold(t)
	dir := filepath.Join(t.TempDir(), "cache")

	st1, err := OpenCacheStore(CacheConfig{DiskPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	compileCorpusWith(t, st1, cold, "populate")
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenCacheStore(CacheConfig{DiskPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	compileCorpusWith(t, st2, cold, "disk-warm")
	if s := st2.Stats(); s.BackingHits == 0 {
		t.Fatalf("restarted store served no disk hits over the corpus: %+v", s)
	}
}

// TestCorruptedDiskNeverYieldsWrongAllocation: random bit flips and torn
// tails over a populated log never change a compile result. Every seed
// must open cleanly and reproduce the cold corpus exactly.
func TestCorruptedDiskNeverYieldsWrongAllocation(t *testing.T) {
	cold := compileCorpusCold(t)

	seedDir := filepath.Join(t.TempDir(), "cache")
	st, err := OpenCacheStore(CacheConfig{DiskPath: seedDir})
	if err != nil {
		t.Fatal(err)
	}
	compileCorpusWith(t, st, cold, "populate")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	logs, err := filepath.Glob(filepath.Join(seedDir, "*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("expected one log file, got %v (%v)", logs, err)
	}
	pristine, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	logName := filepath.Base(logs[0])

	var detected int64
	for seed := 0; seed < 8; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		data := append([]byte(nil), pristine...)
		label := "bitflip"
		if seed >= 6 {
			// Torn tail: the log stops mid-record, as after a crash.
			data = data[:1+rng.Intn(len(data)-1)]
			label = "torn"
		} else {
			for n := 1 + rng.Intn(24); n > 0; n-- {
				data[rng.Intn(len(data))] ^= 1 << rng.Intn(8)
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cst, err := OpenCacheStore(CacheConfig{DiskPath: dir})
		if err != nil {
			t.Fatalf("seed %d (%s): corrupted log must still open: %v", seed, label, err)
		}
		compileCorpusWith(t, cst, cold, label)
		if ds, ok := cst.DiskStats(); ok {
			detected += ds.CorruptGets
		}
		if err := cst.Close(); err != nil {
			t.Fatalf("seed %d (%s): close: %v", seed, label, err)
		}
	}
	t.Logf("corrupt records caught at Get across seeds: %d", detected)
}
