// Package parmem reproduces "Compile-time Techniques for Efficient
// Utilization of Parallel Memories" (Gupta & Soffa, PPOPP 1988): a compiler
// that assigns scalar data values to the parallel memory modules of a
// lock-step LIW machine so that the operands of every long instruction can
// be fetched without memory access conflicts, duplicating values across
// modules only when a conflict-free single-copy assignment does not exist.
//
// The pipeline is:
//
//	MPL source ──lang──▶ three-address IR ──dfa──▶ renamed IR (webs)
//	  ──sched──▶ long instruction words ──assign──▶ storage allocation
//	  ──machine──▶ cycle-accurate execution + conflict statistics
//
// Compile runs the whole front half and returns a Program; Program.Run
// simulates it. The experiment drivers (Table1, Table2, Speedups) regenerate
// the paper's evaluation.
package parmem

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"parmem/internal/alloccache"
	"parmem/internal/assign"
	"parmem/internal/budget"
	"parmem/internal/conflict"
	"parmem/internal/dfa"
	"parmem/internal/duplication"
	"parmem/internal/ir"
	"parmem/internal/lang"
	"parmem/internal/machine"
	"parmem/internal/memory"
	optpass "parmem/internal/opt"
	"parmem/internal/sched"
	"parmem/internal/stats"
	"parmem/internal/telemetry"
)

// Re-exported types: the public API surface of the internal packages.
type (
	// Strategy scopes the conflict graph (STOR1, STOR2, STOR3).
	Strategy = assign.Strategy
	// Method selects the duplication algorithm.
	Method = assign.Method
	// Allocation is a complete storage assignment of values to modules.
	Allocation = assign.Allocation
	// Copies maps value ids to the set of modules storing them.
	Copies = duplication.Copies
	// Layout routes array element accesses to modules.
	Layout = memory.Layout
	// Result is a simulation outcome.
	Result = machine.Result
	// RunOptions configures a simulation.
	RunOptions = machine.Options
	// Times holds the t_min/t_ave/t_max transfer times of Table 2.
	Times = stats.Times
	// Instruction is the operand set of one long instruction word.
	Instruction = conflict.Instruction
	// Budget caps the expensive compilation phases; the zero value picks
	// safe defaults (see the field docs in internal/budget).
	Budget = budget.Budget
	// PhaseReport records one assignment phase's budget consumption and
	// any fallback taken (Allocation.Phases).
	PhaseReport = assign.PhaseReport
	// InternalError is a recovered internal invariant panic; no public
	// API call lets a panic escape.
	InternalError = budget.InternalError
	// AllocCache memoizes assignment subproblems (atom colorings,
	// duplication phases, whole assignments) across compilations. It is a
	// pure memo — hits return exactly what the computation would have
	// produced — and is safe for concurrent use, so one cache can serve
	// many goroutines compiling in parallel. Create one with NewAllocCache
	// and pass it via Options.Cache or AssignConfig.Cache.
	AllocCache = alloccache.Cache
	// CacheStats is a snapshot of an AllocCache's hit/miss counters.
	CacheStats = alloccache.Stats
)

// NewAllocCache returns an empty allocation cache holding at most capacity
// entries; capacity <= 0 picks a sensible default.
func NewAllocCache(capacity int) *AllocCache { return alloccache.New(capacity) }

// Typed errors of the robustness taxonomy; test with errors.Is.
var (
	// ErrCanceled is wrapped by every error returned because a
	// context.Context canceled compilation or simulation mid-phase.
	ErrCanceled = budget.ErrCanceled
	// ErrBudget is wrapped by errors returned on budget exhaustion where
	// no cheaper correct answer exists (the simulator's cycle cap);
	// compilation phases degrade instead of returning it.
	ErrBudget = budget.ErrBudget
	// ErrConfig is wrapped by every *ConfigError: errors.Is(err, ErrConfig)
	// identifies "the caller passed a nonsensical configuration" without
	// matching on message text.
	ErrConfig = errors.New("invalid configuration")
)

// ConfigError reports an invalid Options or AssignConfig value rejected at
// the API boundary — before any pipeline phase runs — so nonsensical
// configurations (negative Workers, K outside 1..64, a nil ctx passed to a
// Ctx variant) fail fast with a named parameter instead of tripping an
// invariant deep inside a phase. It wraps ErrConfig.
type ConfigError struct {
	// Param names the offending parameter, e.g. "Options.Workers".
	Param string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("parmem: invalid %s: %s", e.Param, e.Reason)
}

// Unwrap makes errors.Is(err, ErrConfig) match every ConfigError.
func (e *ConfigError) Unwrap() error { return ErrConfig }

// configErrf builds a *ConfigError with a formatted reason.
func configErrf(param, format string, args ...any) *ConfigError {
	return &ConfigError{Param: param, Reason: fmt.Sprintf(format, args...)}
}

// DefaultMaxBacktrackNodes is the search-node budget used when
// Budget.MaxBacktrackNodes is zero.
const DefaultMaxBacktrackNodes = budget.DefaultMaxBacktrackNodes

// Strategies and methods of the paper.
const (
	STOR1 = assign.STOR1
	STOR2 = assign.STOR2
	STOR3 = assign.STOR3
	// PerRegion is the per-region alternative §2 mentions (no global stage).
	PerRegion = assign.PerRegion

	HittingSet = assign.HittingSet
	Backtrack  = assign.Backtrack
)

// Layout constructors.
func InterleavedLayout(k int) Layout { return memory.Interleaved{K: k} }
func SingleModuleLayout(m int) Layout {
	return memory.SingleModule{M: m}
}
func SkewedLayout(k int) Layout { return memory.Skewed{K: k} }

// Options configures compilation.
type Options struct {
	// Modules is the number of parallel memory modules (k); default 8.
	Modules int
	// Units is the number of lock-step functional units; default Modules.
	Units int
	// Strategy scopes the conflict graph; default STOR1.
	Strategy Strategy
	// Method picks the duplication algorithm; default HittingSet.
	Method Method
	// Groups is STOR3's instruction-group count; default 2.
	Groups int
	// DisableAtoms skips clique-separator decomposition (ablation).
	DisableAtoms bool
	// DisableRenaming skips web-based renaming (ablation; the paper notes
	// renaming improves results).
	DisableRenaming bool
	// Unroll unrolls counted loops by this factor before lowering (0 or 1
	// disables). Unrolling is MPL's stand-in for the RLIW compiler's
	// region scheduling: it exposes cross-iteration parallelism to the
	// word scheduler. Loops of at most 2*Unroll iterations unroll fully.
	Unroll int
	// Optimize runs constant folding, copy propagation and dead-temporary
	// elimination on the IR before renaming and scheduling. Fewer
	// surviving temporaries mean a smaller conflict graph.
	Optimize bool
	// IfConvert turns short, fault-free conditionals into straight-line
	// blend arithmetic before lowering, removing basic-block boundaries
	// that would otherwise drain the instruction word.
	IfConvert bool
	// Ctx cancels compilation between and within phases; nil means
	// context.Background(). Errors returned because of cancellation wrap
	// ErrCanceled.
	//
	// Deprecated: pass the context to CompileCtx (and Program.RunCtx)
	// instead. The field is still honored, but an explicit ctx argument
	// takes precedence when both are supplied.
	Ctx context.Context
	// Budget caps the expensive phases. The zero value applies
	// DefaultMaxBacktrackNodes to the duplication search; exhausting a
	// compilation budget degrades to a cheaper strategy (see
	// Allocation.Degraded and Allocation.Phases) instead of failing.
	Budget Budget
	// Workers bounds the worker pool of the parallel assignment engine:
	// per-atom coloring and per-component duplication fan out across this
	// many goroutines, sharing one budget meter. 0 (the default) means one
	// worker per available CPU; 1 forces the sequential paths; negative
	// values are rejected with a *ConfigError. Parallel and sequential
	// runs produce bit-identical allocations whenever the budget is not
	// exhausted mid-run.
	Workers int
	// Store is the cache the compilation reads and writes: the in-memory
	// memo table of an OpenCacheStore, optionally backed by a persistent
	// disk tier. Share one CacheStore across repeated compiles (and across
	// processes, via CacheConfig.DiskPath) to skip the coloring and
	// duplication searches. nil disables caching unless the deprecated
	// Cache field is set; when both are set, Store wins.
	Store CacheStore
	// Cache memoizes assignment subproblems across compilations; nil
	// disables caching.
	//
	// Deprecated: use Store (OpenCacheStore with a CacheConfig), which
	// also composes the persistent tier. Cache is still honored when
	// Store is nil.
	Cache *AllocCache
	// Reference runs the map-graph reference implementations of the hot
	// assignment phases (urgency coloring, clique-separator decomposition)
	// instead of the dense CSR/bitset-backed ones. Output is bit-identical
	// either way — the knob exists for the differential tests and ablation
	// benchmarks that prove and measure that.
	Reference bool
	// Telemetry records spans and metrics for this compilation (see
	// NewRecorder and DESIGN §10). nil — the default — disables all
	// telemetry: the instrumented paths reduce to one pointer test and
	// perform no allocations, atomics or clock reads.
	Telemetry *Recorder

	// meter, when set by the batch API, charges assignment search work
	// against a meter shared by the whole batch instead of a fresh per-call
	// one built from Ctx and Budget.
	meter *budget.Meter
}

func (o Options) withDefaults() Options {
	if o.Modules == 0 {
		o.Modules = 8
	}
	if o.Units == 0 {
		o.Units = o.Modules
	}
	return o
}

// validate rejects option values (after defaulting) that would otherwise
// trip internal invariant panics deeper in the pipeline, making those
// panics unreachable from user input. Every rejection is a *ConfigError
// (errors.Is(err, ErrConfig)) naming the offending field.
func (o Options) validate() error {
	if o.Modules < 1 {
		return configErrf("Options.Modules", "%d: need at least one memory module", o.Modules)
	}
	if o.Modules > 64 {
		return configErrf("Options.Modules", "%d: at most 64 memory modules are supported", o.Modules)
	}
	if o.Units < 1 {
		return configErrf("Options.Units", "%d: need at least one functional unit", o.Units)
	}
	if err := validateEngine("Options", int(o.Strategy), int(o.Method), o.Workers); err != nil {
		return err
	}
	if o.Groups < 0 {
		return configErrf("Options.Groups", "%d: must be non-negative", o.Groups)
	}
	if o.Unroll < 0 {
		return configErrf("Options.Unroll", "%d: must be non-negative", o.Unroll)
	}
	return nil
}

// validateEngine checks the strategy/method/workers triple shared by
// Options and AssignConfig; prefix names the struct in the error.
func validateEngine(prefix string, strategy, method, workers int) error {
	if strategy < int(STOR1) || strategy > int(PerRegion) {
		return configErrf(prefix+".Strategy", "unknown strategy %d", strategy)
	}
	if method != int(HittingSet) && method != int(Backtrack) {
		return configErrf(prefix+".Method", "unknown duplication method %d", method)
	}
	if workers < 0 {
		return configErrf(prefix+".Workers", "%d: must be non-negative (0 = one per CPU, 1 = sequential)", workers)
	}
	return nil
}

// validate rejects AssignConfig values at the API boundary; see
// Options.validate.
func (cfg AssignConfig) validate() error {
	if cfg.K < 1 {
		return configErrf("AssignConfig.K", "%d: need at least one memory module", cfg.K)
	}
	if cfg.K > 64 {
		return configErrf("AssignConfig.K", "%d: at most 64 memory modules are supported", cfg.K)
	}
	return validateEngine("AssignConfig", int(cfg.Strategy), int(cfg.Method), cfg.Workers)
}

// ctx returns the compilation context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// recoverPhase converts a panic escaping a public API call into a typed
// *InternalError naming the phase, so no call can escape a panic.
func recoverPhase(phase string, err *error) {
	if r := recover(); r != nil {
		// An inner boundary (assign, machine) may already have typed the
		// failure and re-panicked it outward; pass such values through
		// unchanged instead of double-wrapping them — the inner Phase and
		// Stack are the ones that name the real failure point.
		if ie, ok := r.(*InternalError); ok {
			*err = ie
			return
		}
		*err = &InternalError{Phase: phase, Value: r, Stack: debug.Stack()}
	}
}

// checkpoint polls ctx between pipeline phases.
func checkpoint(ctx context.Context, phase string) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("parmem: %s: %w: %v", phase, ErrCanceled, cerr)
	}
	return nil
}

// Program is a fully compiled and allocated MPL program, ready to simulate.
type Program struct {
	// Func is the (renamed) IR.
	Func *ir.Func
	// Sched is the long-instruction-word schedule.
	Sched *sched.Program
	// Alloc is the storage allocation.
	Alloc Allocation
	// Opt records the options used.
	Opt Options

	aprog assign.Program
}

// CompileCtx parses, lowers, renames, schedules and allocates MPL source
// under ctx. It is the primary compile entry point; Compile is the
// ctx-less convenience form.
//
// CompileCtx never panics: internal invariant failures come back as a
// typed *InternalError. A canceled ctx aborts between or within phases
// with an error wrapping ErrCanceled; an exhausted opt.Budget degrades
// the affected assignment phases (see Allocation.Degraded) instead of
// failing. A nil ctx is rejected with a *ConfigError — pass
// context.Background() explicitly, or use Compile.
func CompileCtx(ctx context.Context, src string, opt Options) (*Program, error) {
	if ctx == nil {
		return nil, configErrf("ctx", "nil context passed to CompileCtx; pass context.Background() or use Compile")
	}
	opt.Ctx = ctx
	return Compile(src, opt)
}

// Compile is CompileCtx without an explicit context; the deprecated
// opt.Ctx field is honored when set.
func Compile(src string, opt Options) (p *Program, err error) {
	defer recoverPhase("compile", &err)
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ctx := opt.ctx()
	cache := storeCache(opt.Store, opt.Cache)
	rec := opt.Telemetry
	wireTelemetry(rec, cache)
	wireStoreTelemetry(rec, opt.Store)
	root := rec.StartSpanContext(ctx, "compile", nil)
	defer root.End()
	if err := checkpoint(ctx, "parse"); err != nil {
		return nil, err
	}
	sp0 := rec.StartSpan("parse", root)
	ast, err := lang.Parse(src)
	sp0.End()
	if err != nil {
		return nil, err
	}
	sp0 = rec.StartSpan("lower", root)
	if opt.Unroll >= 2 {
		lang.Unroll(ast, opt.Unroll, 2*opt.Unroll)
	}
	if opt.IfConvert {
		lang.IfConvert(ast, 0)
	}
	f, err := lang.Lower(ast)
	if err == nil && opt.Optimize {
		optpass.Run(f)
	}
	sp0.End()
	if err != nil {
		return nil, err
	}
	if err := checkpoint(ctx, "rename"); err != nil {
		return nil, err
	}
	if !opt.DisableRenaming {
		sp0 = rec.StartSpan("rename", root)
		_, _, rerr := dfa.Rename(f)
		sp0.End()
		if rerr != nil {
			return nil, rerr
		}
	}
	if err := checkpoint(ctx, "schedule"); err != nil {
		return nil, err
	}
	sp0 = rec.StartSpan("schedule", root)
	sp, err := sched.Schedule(f, sched.Config{Modules: opt.Modules, Units: opt.Units})
	sp0.End()
	if err != nil {
		return nil, err
	}
	cfg := dfa.BuildCFG(f)
	regs := cfg.FindRegions()
	aprog := assign.Program{
		Instrs:   sp.Instructions(),
		RegionOf: sp.RegionOf,
		Global:   dfa.GlobalValues(f, regs),
	}
	rec.Counter(telemetry.MInstructions).Add(int64(len(aprog.Instrs)))
	al, err := assign.Assign(aprog, assign.Options{
		K:            opt.Modules,
		Strategy:     opt.Strategy,
		Method:       opt.Method,
		Groups:       opt.Groups,
		DisableAtoms: opt.DisableAtoms,
		Ctx:          opt.Ctx,
		Budget:       opt.Budget,
		Workers:      opt.Workers,
		Cache:        cache,
		Reference:    opt.Reference,
		Meter:        opt.meter,
		Telemetry:    rec,
		Parent:       root,
	})
	if err != nil {
		return nil, err
	}
	sp0 = rec.StartSpan("verify", root)
	bad := assign.Verify(aprog, al)
	sp0.End()
	if bad != nil {
		return nil, fmt.Errorf("parmem: allocation left %d conflicting instructions (%v)", len(bad), bad)
	}
	return &Program{Func: f, Sched: sp, Alloc: al, Opt: opt, aprog: aprog}, nil
}

// RunCtx simulates the program on the LIW machine model under ctx. It is
// the primary simulation entry point; Run is the ctx-less convenience
// form. A nil ctx is rejected with a *ConfigError — pass
// context.Background() explicitly, or use Run.
func (p *Program) RunCtx(ctx context.Context, opt RunOptions) (*Result, error) {
	if ctx == nil {
		return nil, configErrf("ctx", "nil context passed to RunCtx; pass context.Background() or use Run")
	}
	opt.Ctx = ctx
	return p.Run(opt)
}

// Run simulates the program on the LIW machine model. When opt leaves Ctx
// or MaxCycles unset they are inherited from the compile Options, so a
// single Options value budgets the whole compile-and-run flow.
func (p *Program) Run(opt RunOptions) (res *Result, err error) {
	defer recoverPhase("run", &err)
	if opt.Ctx == nil {
		opt.Ctx = p.Opt.Ctx
	}
	if opt.MaxCycles == 0 {
		opt.MaxCycles = p.Opt.Budget.MaxCycles
	}
	return machine.Run(p.Sched, p.Alloc.Copies, opt)
}

// Instructions returns the operand sets of the scheduled words.
func (p *Program) Instructions() []Instruction { return p.aprog.Instrs }

// AnalyzeTimes computes the paper's t_min/t_ave/t_max model from a run.
func (p *Program) AnalyzeTimes(res *Result) Times {
	return stats.Analyze(res.Profiles, p.Opt.Modules)
}

// PofI returns the aggregate distribution p(i) of an instruction needing i
// operands from one module (the paper's t_ave formula input).
func (p *Program) PofI(res *Result) []float64 {
	return stats.PofI(res.Profiles, p.Opt.Modules)
}

// AssignConfig configures a direct AssignValues call. The zero values of
// Strategy and Method are the paper's defaults (STOR1, HittingSet); K is
// required.
type AssignConfig struct {
	// K is the number of memory modules; required, 1..64.
	K int
	// Strategy scopes the conflict graph; default STOR1.
	Strategy Strategy
	// Method picks the duplication algorithm; default HittingSet.
	Method Method
	// Budget caps the duplication searches; the zero value applies
	// DefaultMaxBacktrackNodes. Exhaustion degrades to a cheaper strategy
	// and marks the Allocation Degraded instead of failing.
	Budget Budget
	// Workers bounds the parallel assignment engine's worker pool; see
	// Options.Workers for the semantics.
	Workers int
	// Store is the cache this call reads and writes; see Options.Store.
	// When both Store and the deprecated Cache are set, Store wins.
	Store CacheStore
	// Cache memoizes subproblem results across calls; nil disables.
	//
	// Deprecated: use Store; see Options.Cache.
	Cache *AllocCache
	// Reference selects the map-graph reference implementations of the hot
	// assignment phases; see Options.Reference.
	Reference bool
	// Telemetry records spans and metrics for this call; see
	// Options.Telemetry.
	Telemetry *Recorder

	// meter, when set by the batch API, charges assignment search work
	// against a meter shared by the whole batch; see Options.meter.
	meter *budget.Meter
}

// AssignValues runs memory-module assignment directly on a list of
// instruction operand sets — the abstract form of the paper's §2, useful
// when the instructions come from somewhere other than the MPL compiler.
// Values are arbitrary small integers.
//
// A canceled ctx aborts with an error wrapping ErrCanceled (nil means
// context.Background()), and an exhausted cfg.Budget degrades to a
// cheaper duplication strategy, marking the returned Allocation Degraded
// (its Phases record what each phase spent and which fallback it took).
// Degraded allocations are still conflict-free.
func AssignValues(ctx context.Context, instrs []Instruction, cfg AssignConfig) (al Allocation, err error) {
	defer recoverPhase("assign", &err)
	if verr := cfg.validate(); verr != nil {
		return Allocation{}, verr
	}
	cache := storeCache(cfg.Store, cfg.Cache)
	wireTelemetry(cfg.Telemetry, cache)
	wireStoreTelemetry(cfg.Telemetry, cfg.Store)
	cfg.Telemetry.Counter(telemetry.MInstructions).Add(int64(len(instrs)))
	p := assign.Program{Instrs: instrs}
	al, err = assign.Assign(p, assign.Options{
		K:         cfg.K,
		Strategy:  cfg.Strategy,
		Method:    cfg.Method,
		Ctx:       ctx,
		Budget:    cfg.Budget,
		Workers:   cfg.Workers,
		Cache:     cache,
		Reference: cfg.Reference,
		Meter:     cfg.meter,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return Allocation{}, err
	}
	if bad := assign.Verify(p, al); bad != nil {
		return Allocation{}, fmt.Errorf("parmem: allocation left conflicts in instructions %v", bad)
	}
	return al, nil
}

// AssignValuesLegacy is the positional form of AssignValues.
//
// Deprecated: use AssignValues with an AssignConfig.
func AssignValuesLegacy(instrs []Instruction, k int, strategy Strategy, method Method) (Allocation, error) {
	return AssignValues(context.Background(), instrs, AssignConfig{K: k, Strategy: strategy, Method: method})
}

// AssignValuesCtx is the positional, ctx-and-budget form of AssignValues.
// A nil ctx is rejected with a *ConfigError.
//
// Deprecated: use AssignValues with an AssignConfig.
func AssignValuesCtx(ctx context.Context, instrs []Instruction, k int, strategy Strategy, method Method, b Budget) (Allocation, error) {
	if ctx == nil {
		return Allocation{}, configErrf("ctx", "nil context passed to AssignValuesCtx; pass context.Background()")
	}
	return AssignValues(ctx, instrs, AssignConfig{K: k, Strategy: strategy, Method: method, Budget: b})
}

// ConflictFree reports whether the operand set can be fetched in one cycle
// under the given allocation.
func ConflictFree(operands []int, copies Copies) bool {
	return duplication.ConflictFree(operands, copies)
}
