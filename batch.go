package parmem

import (
	"context"
	"math"
	"runtime"
	"sync"

	"parmem/internal/budget"
	"parmem/internal/telemetry"
)

// This file is the batch front of the engine: many independent programs
// streamed through one bounded worker pool. Batching exists for throughput
// callers — experiment sweeps, test-corpus replays, build farms — where the
// per-call costs that a single Compile amortizes poorly (worker pool spin-up,
// cold caches, fresh budget meters) dominate. Every item still goes through
// the exact single-call pipeline, so a batch result is the same bytes the
// corresponding sequential call would produce.
//
// Resource model. A batch owns one budget meter sized at the per-item node
// cap times the item count, shared by every item: total search work is capped
// for the whole batch no matter how items distribute it, and a canceled ctx
// stops all in-flight items. Peak memory is bounded by the worker count — at
// most that many items are resident at once; finished Programs are retained
// only in the results slice. Within a multi-item batch each item runs its
// assignment sequentially (inner Workers = 1): item-level parallelism already
// saturates the pool, and nested fan-out would oversubscribe it.

// BatchResult is one CompileBatch outcome. Exactly one of Program and Err is
// non-nil.
type BatchResult struct {
	// Program is the compiled program, nil when compilation failed.
	Program *Program
	// Err is the per-item failure; other items are unaffected.
	Err error
}

// AssignBatchResult is one AssignValuesBatch outcome.
type AssignBatchResult struct {
	// Alloc is the storage allocation; zero when Err is non-nil.
	Alloc Allocation
	// Err is the per-item failure; other items are unaffected.
	Err error
}

// batchWorkers resolves how many batch items run concurrently: the
// requested worker count (0 meaning one per available CPU, minimum 1),
// clamped to the item count.
func batchWorkers(requested, n int) int {
	w := requested
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// newBatchMeter builds the node/time meter shared by all items of a batch:
// the per-item node cap times the item count (saturating to unlimited on
// overflow), and the per-item wall-clock cap applied to the batch as a
// whole.
func newBatchMeter(ctx context.Context, b Budget, n int) *budget.Meter {
	per := b.BacktrackNodes()
	total := per
	if per > 0 && n > 1 {
		if per > math.MaxInt64/int64(n) {
			total = -1
		} else {
			total = per * int64(n)
		}
	}
	return budget.NewMeter(ctx, total, b.MaxDuplicationTime)
}

// runBatch is the shared scheduling skeleton: run fn(i) for every index
// across a bounded pool, preserving input order in the caller's results.
// When rec is non-nil each item is counted started and tracked in-flight,
// so a scrape mid-batch sees the pool's instantaneous occupancy.
func runBatch(rec *Recorder, workers, n int, fn func(i int)) {
	if rec != nil {
		items := rec.Counter(telemetry.MBatchItems)
		inflight := rec.Gauge(telemetry.MBatchInFlight)
		inner := fn
		fn = func(i int) {
			items.Inc()
			inflight.Add(1)
			defer inflight.Add(-1)
			inner(i)
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// CompileBatch compiles N independent MPL sources through one bounded
// worker pool and returns one result per source, in input order. Items fail
// independently: a parse error in one source leaves the others untouched.
//
// opt applies to every item. opt.Workers bounds how many items compile
// concurrently (0 means one per available CPU); within a multi-item batch
// each item's assignment runs sequentially, so the pool is the only source
// of parallelism and peak memory stays proportional to the worker count.
// All items share one budget meter holding len(srcs) times the per-item
// node budget — see Allocation.Phases on each result for what its item
// spent — and share opt.Cache when one is set, which is where batch
// throughput on similar inputs comes from. A canceled ctx aborts in-flight
// and not-yet-started items with errors wrapping ErrCanceled; finished
// items keep their results.
func CompileBatch(ctx context.Context, srcs []string, opt Options) []BatchResult {
	results := make([]BatchResult, len(srcs))
	if len(srcs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = opt.ctx()
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	inner := opt
	inner.Ctx = ctx
	inner.meter = newBatchMeter(ctx, opt.Budget, len(srcs))
	if len(srcs) > 1 {
		inner.Workers = 1
	}
	runBatch(opt.Telemetry, batchWorkers(opt.Workers, len(srcs)), len(srcs), func(i int) {
		p, err := Compile(srcs[i], inner)
		results[i] = BatchResult{Program: p, Err: err}
	})
	return results
}

// AssignValuesBatch runs memory-module assignment on N independent
// instruction lists through one bounded worker pool and returns one result
// per list, in input order. It is the batch form of AssignValues; see
// CompileBatch for the scheduling, budget-sharing and cancellation
// semantics (cfg.Workers plays the role of opt.Workers).
func AssignValuesBatch(ctx context.Context, items [][]Instruction, cfg AssignConfig) []AssignBatchResult {
	results := make([]AssignBatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	inner := cfg
	inner.meter = newBatchMeter(ctx, cfg.Budget, len(items))
	if len(items) > 1 {
		inner.Workers = 1
	}
	runBatch(cfg.Telemetry, batchWorkers(cfg.Workers, len(items)), len(items), func(i int) {
		al, err := AssignValues(ctx, items[i], inner)
		results[i] = AssignBatchResult{Alloc: al, Err: err}
	})
	return results
}
