package parmem

import (
	"context"
	"fmt"

	"parmem/internal/assign"
	"parmem/internal/telemetry"
)

// Incremental recompilation: AssignValuesIncremental compiles a program
// once while retaining per-component state, and AssignValuesDelta
// recompiles after an edit touching only the dirty region — the conflict
// components reachable from the edited instructions' values. The frozen
// dense conflict-graph snapshot is patched edge-by-edge, untouched
// components reuse their prior colorings and copy tables verbatim, and the
// resulting Allocation is bit-identical to a cold full recompile of the
// edited program (Phases excepted: its timings and budget charges reflect
// the incremental work actually done).

// Delta describes a program edit against a prior incremental result:
// Changed replaces instructions in place, Removed deletes them, Added
// appends new ones. Changed and Removed index the prior result's
// instruction stream (see AssignResult.Instructions).
type Delta = assign.Delta

// ChangedInstruction replaces the instruction at Index with Instr.
type ChangedInstruction = assign.ChangedInstr

// IncrementalStats reports what an incremental run reused versus
// recomputed: component counts, dirty/reused splits, per-component cache
// hits, and whether the engine fell back to a full recompile.
type IncrementalStats = assign.IncrStats

// AssignResult is an allocation plus the retained incremental state a
// later AssignValuesDelta patches against. Results are immutable: applying
// a delta returns a fresh result and leaves the base valid, so several
// speculative edits can fork from one base concurrently.
type AssignResult struct {
	// Alloc is the storage allocation, bit-identical to what AssignValues
	// would return for the same instruction stream.
	Alloc Allocation
	// Incremental reports the reuse accounting of the run that produced
	// this result.
	Incremental IncrementalStats

	state *assign.IncrState
	// Option fingerprint the state was built under; deltas must match.
	k         int
	strategy  Strategy
	method    Method
	reference bool
}

// Instructions returns a copy of the result's instruction stream — the
// base a Delta's Changed/Removed indices refer to.
func (r *AssignResult) Instructions() []Instruction { return r.state.Instructions() }

// NumInstructions returns the length of the result's instruction stream.
func (r *AssignResult) NumInstructions() int { return r.state.NumInstructions() }

// validateIncremental layers the incremental-only constraints over the
// usual AssignConfig checks.
func (cfg AssignConfig) validateIncremental() error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.Strategy != STOR1 {
		return configErrf("AssignConfig.Strategy",
			"%v: incremental recompilation supports STOR1 only", cfg.Strategy)
	}
	return nil
}

// engineOptions translates an AssignConfig into the internal engine
// options, wiring the cache store and telemetry exactly like AssignValues.
func (cfg AssignConfig) engineOptions(ctx context.Context) assign.Options {
	cache := storeCache(cfg.Store, cfg.Cache)
	wireTelemetry(cfg.Telemetry, cache)
	wireStoreTelemetry(cfg.Telemetry, cfg.Store)
	return assign.Options{
		K:         cfg.K,
		Strategy:  cfg.Strategy,
		Method:    cfg.Method,
		Ctx:       ctx,
		Budget:    cfg.Budget,
		Workers:   cfg.Workers,
		Cache:     cache,
		Reference: cfg.Reference,
		Meter:     cfg.meter,
		Telemetry: cfg.Telemetry,
	}
}

// AssignValuesIncremental is AssignValues plus retained state: the
// returned result holds the frozen conflict-graph snapshot and
// per-component records that make later AssignValuesDelta calls scale
// with the edit, not the program. The allocation itself is bit-identical
// to AssignValues' for the same inputs.
//
// Only STOR1 (the default strategy) supports incremental recompilation;
// other strategies are rejected with a *ConfigError.
func AssignValuesIncremental(ctx context.Context, instrs []Instruction, cfg AssignConfig) (res *AssignResult, err error) {
	defer recoverPhase("assign", &err)
	if verr := cfg.validateIncremental(); verr != nil {
		return nil, verr
	}
	cfg.Telemetry.Counter(telemetry.MInstructions).Add(int64(len(instrs)))
	al, state, stats, err := assign.AssignIncremental(assign.Program{Instrs: instrs}, cfg.engineOptions(ctx))
	if err != nil {
		return nil, err
	}
	if bad := assign.VerifyState(state, al); bad != nil {
		return nil, fmt.Errorf("parmem: allocation left conflicts in instructions %v", bad)
	}
	return &AssignResult{
		Alloc: al, Incremental: stats, state: state,
		k: cfg.K, strategy: cfg.Strategy, method: cfg.Method, reference: cfg.Reference,
	}, nil
}

// AssignValuesDelta applies delta to prev's instruction stream and
// recompiles incrementally: the dense conflict-graph snapshot is patched
// in place-or-copy, only the conflict components containing an edited
// value re-run decomposition, coloring and duplication, and untouched
// components' results are stitched from prev. The returned allocation is
// bit-identical to a cold AssignValues of the edited stream whenever the
// budget is not exhausted mid-run; res.Incremental reports what was
// reused.
//
// cfg's K, Strategy, Method and Reference must match the configuration
// prev was built under (a *ConfigError reports a mismatch); Workers,
// Budget, Store and Telemetry are free to differ. prev is not mutated —
// it remains a valid base for further deltas.
func AssignValuesDelta(ctx context.Context, prev *AssignResult, delta Delta, cfg AssignConfig) (res *AssignResult, err error) {
	defer recoverPhase("assign", &err)
	if prev == nil || prev.state == nil {
		return nil, configErrf("prev", "nil prior result passed to AssignValuesDelta")
	}
	if verr := cfg.validateIncremental(); verr != nil {
		return nil, verr
	}
	switch {
	case cfg.K != prev.k:
		return nil, configErrf("AssignConfig.K", "%d: prior result was built with K=%d", cfg.K, prev.k)
	case cfg.Method != prev.method:
		return nil, configErrf("AssignConfig.Method", "%v: prior result was built with %v", cfg.Method, prev.method)
	case cfg.Reference != prev.reference:
		return nil, configErrf("AssignConfig.Reference", "%v: prior result was built with %v", cfg.Reference, prev.reference)
	}
	al, state, stats, err := assign.AssignDelta(prev.state, delta, cfg.engineOptions(ctx))
	if err != nil {
		return nil, err
	}
	if bad := assign.VerifyState(state, al); bad != nil {
		return nil, fmt.Errorf("parmem: allocation left conflicts in instructions %v", bad)
	}
	return &AssignResult{
		Alloc: al, Incremental: stats, state: state,
		k: cfg.K, strategy: cfg.Strategy, method: cfg.Method, reference: cfg.Reference,
	}, nil
}
