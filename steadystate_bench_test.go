package parmem

// Steady-state throughput instrumentation for the pooled-arena engine.
// The benchmarks here are what `make bench-json` archives into
// BENCH_parmem.json and what `make bench-diff` gates on: allocs/op of a
// warmed engine must not regress. The companion test pins the headline
// claim — a steady-state (cache-warm, pool-warm) assignment allocates at
// most a few percent of what a cold one does — so the property is enforced
// on every `go test`, not only when someone reads benchmark output.

import (
	"context"
	"fmt"
	"testing"

	"parmem/internal/benchprog"
)

// steadyInstrs is the workload both the gate and the benchmark drive: big
// enough that a cold assignment allocates thousands of objects, small
// enough to keep the cold path cheap to run repeatedly.
func steadyInstrs() []Instruction {
	return engineStressInstrs(8, 12, 5)
}

// assignOnce runs one direct assignment with the given cache (nil = cold).
func assignOnce(b testing.TB, instrs []Instruction, cache *AllocCache) {
	al, err := AssignValues(context.Background(), instrs, AssignConfig{
		K: 5, Method: Backtrack, Workers: 1, Cache: cache,
		Budget: Budget{MaxBacktrackNodes: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	if al.Degraded {
		b.Fatal("steady-state workload degraded under an unlimited budget")
	}
}

// BenchmarkAssignSteadyState contrasts the cold path (no memo, every search
// runs) with the steady state (whole-assignment memo warm, arenas pooled) —
// the configuration a long-lived compile server reaches after its first few
// requests. Run with -benchmem; the steady allocs/op column is the number
// the regression gate watches.
func BenchmarkAssignSteadyState(b *testing.B) {
	instrs := steadyInstrs()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			assignOnce(b, instrs, nil)
		}
	})
	b.Run("steady", func(b *testing.B) {
		b.ReportAllocs()
		cache := NewAllocCache(0)
		assignOnce(b, instrs, cache) // warm the memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			assignOnce(b, instrs, cache)
		}
	})
}

// TestSteadyStateAllocsGate enforces the acceptance bound: steady-state
// allocs/op at most 5% of cold allocs/op.
func TestSteadyStateAllocsGate(t *testing.T) {
	instrs := steadyInstrs()
	cold := testing.AllocsPerRun(5, func() {
		assignOnce(t, instrs, nil)
	})
	cache := NewAllocCache(0)
	assignOnce(t, instrs, cache)
	steady := testing.AllocsPerRun(10, func() {
		assignOnce(t, instrs, cache)
	})
	t.Logf("cold %.0f allocs/op, steady %.0f allocs/op (%.2f%%)", cold, steady, 100*steady/cold)
	if steady > cold*0.05 {
		t.Fatalf("steady-state allocations not amortized: steady %.0f vs cold %.0f allocs/op (limit 5%%)",
			steady, cold)
	}
}

// BenchmarkCompileBatch measures end-to-end batch throughput over the
// built-in benchmark suite, reporting programs compiled per second. The
// cached variant is the steady state of a compile server replaying a
// corpus; the uncached one is the first pass.
func BenchmarkCompileBatch(b *testing.B) {
	srcs := batchSources()
	run := func(b *testing.B, cache *AllocCache) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Cache: cache})
			for j, r := range results {
				if r.Err != nil {
					b.Fatalf("item %d: %v", j, r.Err)
				}
			}
		}
		b.ReportMetric(float64(len(srcs))*float64(b.N)/b.Elapsed().Seconds(), "progs/sec")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) {
		cache := NewAllocCache(0)
		for _, src := range srcs { // warm: one sequential pass
			if _, err := Compile(src, Options{Modules: 8, Cache: cache}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		run(b, cache)
	})
}

// BenchmarkCompileBatchWorkers sweeps the batch pool width on the benchmark
// corpus (uncached, so every item does full work).
func BenchmarkCompileBatchWorkers(b *testing.B) {
	srcs := batchSources()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Workers: w})
				for j, r := range results {
					if r.Err != nil {
						b.Fatalf("item %d: %v", j, r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(srcs))*float64(b.N)/b.Elapsed().Seconds(), "progs/sec")
		})
	}
}

// keep benchprog import: batchSources lives in batch_test.go.
var _ = benchprog.All
