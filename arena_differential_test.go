package parmem

// Differential testing of the scratch arenas: every compilation must
// produce a bit-identical allocation whether the hot phases draw their
// per-call state from the pooled arenas (the default) or from fresh
// heap allocations (arena disabled). This is the pipeline-level proof of
// the arena ownership contract — a buffer that leaked into a result, or
// one returned unzeroed, would show up here as a divergence between the
// first (cold-pool) and later (reused-pool) runs or between the pooled
// and fresh backends.

import (
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/arena"
	"parmem/internal/benchprog"
)

// assertPooledMatchesFresh compiles src twice with pooling on — the second
// run reuses whatever the first returned to the pool — and once with
// pooling off, and requires all three allocations identical.
func assertPooledMatchesFresh(t *testing.T, label string, opt Options, src string) {
	t.Helper()
	p1, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("%s (%+v): pooled compile: %v", label, opt, err)
	}
	p2, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("%s (%+v): pooled recompile: %v", label, opt, err)
	}
	prev := arena.SetEnabled(false)
	defer arena.SetEnabled(prev)
	pf, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("%s (%+v): fresh compile: %v", label, opt, err)
	}
	f1, f2, ff := fingerprint(p1), fingerprint(p2), fingerprint(pf)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("%s (%+v): pooled runs diverged from each other\nfirst:  %+v\nsecond: %+v",
			label, opt, f1, f2)
	}
	if !reflect.DeepEqual(f1, ff) {
		t.Fatalf("%s (%+v): pooled and fresh allocations diverged\npooled: %+v\nfresh:  %+v",
			label, opt, f1, ff)
	}
}

// TestArenaBitIdenticalBenchmarks runs the full benchmark suite through
// every engine config with the pooled and fresh-allocation backends.
func TestArenaBitIdenticalBenchmarks(t *testing.T) {
	configs := denseDiffConfigs()
	if testing.Short() {
		configs = configs[:3]
	}
	for _, spec := range benchprog.All() {
		for _, opt := range configs {
			assertPooledMatchesFresh(t, spec.Name, opt, spec.Source)
		}
	}
}

// TestArenaBitIdenticalFuzz does the same over random MPL programs.
func TestArenaBitIdenticalFuzz(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 5
	}
	configs := denseDiffConfigs()
	for seed := int64(0); seed < int64(iters); seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed + 9000))}
		src := g.gen()
		opt := configs[int(seed)%len(configs)]
		assertPooledMatchesFresh(t, "fuzz", opt, src)
	}
}

// TestArenaBitIdenticalAssignValues covers the direct entry point with
// adversarial operand sets, batch and single-call.
func TestArenaBitIdenticalAssignValues(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for iter := 0; iter < 20; iter++ {
		k := 2 + r.Intn(7)
		var instrs []Instruction
		for i := 0; i < 5+r.Intn(25); i++ {
			n := 1 + r.Intn(k)
			in := make(Instruction, n)
			for j := range in {
				in[j] = r.Intn(30)
			}
			instrs = append(instrs, in)
		}
		for _, method := range []Method{HittingSet, Backtrack} {
			cfg := AssignConfig{K: k, Method: method}
			ap, err := AssignValues(nil, instrs, cfg)
			if err != nil {
				t.Fatalf("iter %d: pooled assign: %v", iter, err)
			}
			var af Allocation
			func() {
				prev := arena.SetEnabled(false)
				defer arena.SetEnabled(prev)
				af, err = AssignValues(nil, instrs, cfg)
			}()
			if err != nil {
				t.Fatalf("iter %d: fresh assign: %v", iter, err)
			}
			ap.Phases, af.Phases = nil, nil // wall-clock timings differ
			if !reflect.DeepEqual(ap, af) {
				t.Fatalf("iter %d (k=%d %v): pooled and fresh allocations diverged\npooled: %+v\nfresh:  %+v",
					iter, k, method, ap, af)
			}
		}
	}
}
