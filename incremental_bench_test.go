package parmem

// Incremental recompilation benchmark (the tentpole headline):
// BenchmarkAssignIncremental sweeps delta sizes 1/5/25 over the chain and
// cluster workloads of the scaling corpus plus the benchprog suite, with a
// cold full-recompile sibling per workload. `make bench-run` archives the
// rows in BENCH_parmem.json and cmd/bench2json derives incr_speedup =
// ns/op(full) / ns/op(delta=N) for every delta row. The acceptance bar:
// delta=1 on the 3200-node chains workload runs in at most 1/5 of the full
// recompile time (incr_speedup >= 5).
//
// Each delta op patches against the SAME retained base (results are
// immutable, deltas fork), editing a fixed set of instruction indices, so
// every iteration performs identical work: patch the dense snapshot,
// recompute the dirty components, stitch the rest from the base. No cache
// is configured — the reuse measured is structural, not memoized.

import (
	"context"
	"fmt"
	"testing"

	"parmem/internal/benchprog"
)

// incrDeltaSizes is the edit-size ladder of the sweep.
var incrDeltaSizes = []int{1, 5, 25}

// incrBenchWorkloads returns the instruction-level workloads of the sweep,
// mirroring the scaling corpus shapes (chains is the 3k-node headline).
func incrBenchWorkloads() []struct {
	name   string
	instrs []Instruction
	cfg    AssignConfig
} {
	unlimited := Budget{MaxBacktrackNodes: -1}
	return []struct {
		name   string
		instrs []Instruction
		cfg    AssignConfig
	}{
		{
			name:   "chains",
			instrs: toInstructions(benchprog.ChainInstrs(8, 400, 4)),
			cfg:    AssignConfig{K: 8, Workers: 1, Budget: unlimited},
		},
		{
			name:   "clusters",
			instrs: toInstructions(benchprog.ClusterInstrs(16, 14, 6)),
			cfg:    AssignConfig{K: 6, Method: Backtrack, Workers: 1, Budget: unlimited},
		},
	}
}

// benchDelta builds a delta touching n fixed, evenly spread instruction
// indices. Each touched instruction is replaced by a copy of itself: the
// graph shape is unchanged (so every iteration recomputes the same dirty
// region), but the touched components re-run the pipeline exactly as they
// would for a real small edit.
func benchDelta(instrs []Instruction, n int) Delta {
	if n > len(instrs) {
		n = len(instrs)
	}
	var d Delta
	for j := 0; j < n; j++ {
		idx := j * len(instrs) / n
		d.Changed = append(d.Changed, ChangedInstruction{
			Index: idx,
			Instr: append(Instruction(nil), instrs[idx]...),
		})
	}
	return d
}

func BenchmarkAssignIncremental(b *testing.B) {
	ctx := context.Background()
	for _, wl := range incrBenchWorkloads() {
		b.Run(wl.name+"/full", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AssignValues(ctx, wl.instrs, wl.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, n := range incrDeltaSizes {
			b.Run(fmt.Sprintf("%s/delta=%d", wl.name, n), func(b *testing.B) {
				base, err := AssignValuesIncremental(ctx, wl.instrs, wl.cfg)
				if err != nil {
					b.Fatal(err)
				}
				d := benchDelta(wl.instrs, n)
				var last IncrementalStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := AssignValuesDelta(ctx, base, d, wl.cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res.Incremental
				}
				b.ReportMetric(float64(last.Dirty), "dirty-comps")
				b.ReportMetric(float64(last.Reused), "reused-comps")
			})
		}
	}

	// The benchprog suite: every program's instruction stream held as a
	// base, one delta per program per op (delta sizes clamped to the
	// stream). The full sibling cold-assigns every stream.
	type suiteBase struct {
		instrs []Instruction
		base   *AssignResult
		cfg    AssignConfig
	}
	var suite []suiteBase
	for _, spec := range benchprog.All() {
		p, err := Compile(spec.Source, Options{Modules: 8})
		if err != nil {
			b.Fatal(err)
		}
		instrs := p.Instructions()
		if len(instrs) == 0 {
			continue
		}
		cfg := AssignConfig{K: 8, Workers: 1, Budget: Budget{MaxBacktrackNodes: -1}}
		base, err := AssignValuesIncremental(ctx, instrs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		suite = append(suite, suiteBase{instrs: instrs, base: base, cfg: cfg})
	}
	b.Run("suite/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, sb := range suite {
				if _, err := AssignValues(ctx, sb.instrs, sb.cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, n := range incrDeltaSizes {
		b.Run(fmt.Sprintf("suite/delta=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sb := range suite {
					if _, err := AssignValuesDelta(ctx, sb.base, benchDelta(sb.instrs, n), sb.cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
