package parmem

// Differential testing of the incremental recompilation engine: every
// delta-patched allocation must be bit-identical to a cold full recompile
// of the edited instruction stream — across random edit sequences that
// add, remove and change instructions (including edits that split and
// merge conflict components), at workers=1 and workers=4, and across the
// flat, blocked and CSR bitset representations of the patched dense
// snapshot. Phases are excluded from the comparison: an incremental run
// honestly reports the (smaller) work it did, everything else must match
// bit for bit.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/benchprog"
	"parmem/internal/graph"
)

// incrFingerprint is allocFingerprint without the phase names: the
// determinism-relevant allocation payload.
type incrFingerprint struct {
	Copies      map[int]uint64
	Unassigned  []int
	Forced      []int
	SingleCopy  int
	MultiCopy   int
	TotalCopies int
	Atoms       int
	Degraded    bool
}

func incrFP(al Allocation) incrFingerprint {
	fp := incrFingerprint{
		Copies:      make(map[int]uint64, len(al.Copies)),
		Unassigned:  al.Unassigned,
		Forced:      al.Forced,
		SingleCopy:  al.SingleCopy,
		MultiCopy:   al.MultiCopy,
		TotalCopies: al.TotalCopies,
		Atoms:       al.Atoms,
		Degraded:    al.Degraded,
	}
	if fp.Unassigned == nil {
		fp.Unassigned = []int{}
	}
	if fp.Forced == nil {
		fp.Forced = []int{}
	}
	for v, s := range al.Copies {
		fp.Copies[v] = uint64(s)
	}
	return fp
}

// randInstr builds a random instruction over a blocky value space: values
// are grouped into blocks of blockSize, an instruction usually draws all
// its operands from one block (keeping components small and plentiful) and
// occasionally bridges two blocks — the edits that later remove or rewrite
// such a bridge split components, and the ones that add it merge them.
func randInstr(rng *rand.Rand, blocks, blockSize, width int) Instruction {
	pickBlock := rng.Intn(blocks)
	in := make(Instruction, 0, width)
	n := 2 + rng.Intn(width-1)
	for j := 0; j < n; j++ {
		b := pickBlock
		if rng.Intn(8) == 0 { // bridge
			b = rng.Intn(blocks)
		}
		in = append(in, b*blockSize+rng.Intn(blockSize))
	}
	return in
}

// randDelta builds a random edit against a stream of length n: a mix of
// changes, removals and additions. It always leaves at least one
// instruction behind.
func randDelta(rng *rand.Rand, n, blocks, blockSize, width int) Delta {
	var d Delta
	used := map[int]bool{}
	edits := 1 + rng.Intn(3)
	for e := 0; e < edits; e++ {
		switch rng.Intn(3) {
		case 0: // change
			idx := rng.Intn(n)
			if used[idx] {
				continue
			}
			used[idx] = true
			d.Changed = append(d.Changed, ChangedInstruction{
				Index: idx,
				Instr: randInstr(rng, blocks, blockSize, width),
			})
		case 1: // remove
			idx := rng.Intn(n)
			if used[idx] || n-len(d.Removed) <= 1 {
				continue
			}
			used[idx] = true
			d.Removed = append(d.Removed, idx)
		default: // add
			d.Added = append(d.Added, randInstr(rng, blocks, blockSize, width))
		}
	}
	return d
}

// applyDeltaRef is the oracle edit: apply d to instrs by the documented
// rule (Changed in place, Removed deleted, Added appended).
func applyDeltaRef(instrs []Instruction, d Delta) []Instruction {
	removed := map[int]bool{}
	for _, i := range d.Removed {
		removed[i] = true
	}
	changed := map[int]Instruction{}
	for _, c := range d.Changed {
		changed[c.Index] = c.Instr
	}
	var out []Instruction
	for i, in := range instrs {
		if removed[i] {
			continue
		}
		if ni, ok := changed[i]; ok {
			out = append(out, append(Instruction(nil), ni...))
			continue
		}
		out = append(out, append(Instruction(nil), in...))
	}
	for _, in := range d.Added {
		out = append(out, append(Instruction(nil), in...))
	}
	return out
}

// TestIncrementalDifferential drives the corpus through random delta
// sequences, asserting at every step that the incremental allocation is
// bit-identical to a cold AssignValues of the edited stream, for both
// duplication methods, workers=1 and 4, and all three bitset kinds.
func TestIncrementalDifferential(t *testing.T) {
	kinds := []struct {
		name          string
		flat, blocked int
	}{
		{"flat", graph.DenseBitsetMaxN, graph.BlockedBitsetMaxN},
		{"blocked", 8, graph.BlockedBitsetMaxN},
		{"csr", 0, 0},
	}
	type seedProg struct {
		name                     string
		instrs                   []Instruction
		blocks, blockSize, width int
	}
	var corpus []seedProg
	// Random blocky programs: many small components plus occasional bridges.
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		var instrs []Instruction
		for i := 0; i < 50+rng.Intn(40); i++ {
			instrs = append(instrs, randInstr(rng, 6, 8, 4))
		}
		corpus = append(corpus, seedProg{
			name: "rand", instrs: instrs, blocks: 6, blockSize: 8, width: 4,
		})
	}
	// Deterministic multi-component workloads from the benchmark families.
	corpus = append(corpus,
		seedProg{name: "chains", instrs: toInstructions(benchprog.ChainInstrs(4, 24, 4)),
			blocks: 4, blockSize: 24, width: 4},
		seedProg{name: "clusters", instrs: toInstructions(benchprog.ClusterInstrs(5, 12, 4)),
			blocks: 5, blockSize: 12, width: 4},
	)

	steps := 6
	if testing.Short() {
		steps = 3
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			restore := graph.SetBitsetCeilings(kind.flat, kind.blocked)
			defer restore()
			for pi, prog := range corpus {
				for _, method := range []Method{HittingSet, Backtrack} {
					for _, workers := range []int{1, 4} {
						if testing.Short() && (method == Backtrack || workers == 4) && kind.name != "flat" {
							continue
						}
						cfg := AssignConfig{K: 6, Method: method, Workers: workers}
						rng := rand.New(rand.NewSource(int64(1000*pi) + int64(workers) + int64(method)*7))
						res, err := AssignValuesIncremental(context.Background(), prog.instrs, cfg)
						if err != nil {
							t.Fatalf("%s/%v/w%d: cold incremental: %v", prog.name, method, workers, err)
						}
						cold, err := AssignValues(context.Background(), prog.instrs, cfg)
						if err != nil {
							t.Fatalf("%s/%v/w%d: cold full: %v", prog.name, method, workers, err)
						}
						if got, want := incrFP(res.Alloc), incrFP(cold); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%v/w%d: cold incremental != cold full:\n got %+v\nwant %+v",
								prog.name, method, workers, got, want)
						}
						stream := append([]Instruction(nil), prog.instrs...)
						for step := 0; step < steps; step++ {
							d := randDelta(rng, len(stream), prog.blocks, prog.blockSize, prog.width)
							stream = applyDeltaRef(stream, d)
							res, err = AssignValuesDelta(context.Background(), res, d, cfg)
							if err != nil {
								t.Fatalf("%s/%v/w%d step %d: delta: %v", prog.name, method, workers, step, err)
							}
							if got := res.Instructions(); !reflect.DeepEqual(got, stream) {
								t.Fatalf("%s/%v/w%d step %d: edited stream mismatch", prog.name, method, workers, step)
							}
							cold, err := AssignValues(context.Background(), stream, cfg)
							if err != nil {
								t.Fatalf("%s/%v/w%d step %d: cold: %v", prog.name, method, workers, step, err)
							}
							if got, want := incrFP(res.Alloc), incrFP(cold); !reflect.DeepEqual(got, want) {
								t.Fatalf("%s/%v/w%d step %d: incremental != cold:\n got %+v\nwant %+v\ndelta %+v",
									prog.name, method, workers, step, got, want, d)
							}
						}
					}
				}
			}
		})
	}
}

// TestIncrementalReuse pins the economics: a single-instruction edit on a
// multi-component workload must leave most components untouched and reuse
// them, and a shared cache store must serve repeated (oscillating) edits
// from the "comp" level.
func TestIncrementalReuse(t *testing.T) {
	instrs := toInstructions(benchprog.ChainInstrs(6, 30, 4))
	cfg := AssignConfig{K: 6, Workers: 1}
	res, err := AssignValuesIncremental(context.Background(), instrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental.Components != 6 {
		t.Fatalf("components = %d, want 6", res.Incremental.Components)
	}
	if !res.Incremental.Full {
		t.Fatalf("cold run must report Full")
	}
	// Rewrite one instruction inside component 0. Dropping value 3 from the
	// clique {0,1,2,3} severs {0,1,2} from the rest of the chain, so the edit
	// splits component 0 in two — both halves dirty, the other 5 chains reused.
	d := Delta{Changed: []ChangedInstruction{{Index: 0, Instr: Instruction{0, 1, 2}}}}
	res2, err := AssignValuesDelta(context.Background(), res, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res2.Incremental
	if st.Full {
		t.Fatalf("delta run reported Full: %+v", st)
	}
	if st.Components != 7 || st.Dirty != 2 || st.Reused != 5 {
		t.Fatalf("components/dirty/reused = %d/%d/%d, want 7/2/5 (%+v)",
			st.Components, st.Dirty, st.Reused, st)
	}
	// The base result must remain a valid fork point after the delta.
	d2 := Delta{Added: []Instruction{{0, 3, 5}}}
	if _, err := AssignValuesDelta(context.Background(), res, d2, cfg); err != nil {
		t.Fatalf("forking from the base after a delta: %v", err)
	}

	// Oscillating edit with a shared store: the second return to a prior
	// component shape must hit the "comp" cache level.
	store, err := OpenCacheStore(CacheConfig{MemoryEntries: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ccfg := cfg
	ccfg.Store = store
	cres, err := AssignValuesIncremental(context.Background(), instrs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	flip := Delta{Changed: []ChangedInstruction{{Index: 0, Instr: Instruction{0, 1, 2}}}}
	flipped, err := AssignValuesDelta(context.Background(), cres, flip, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip back: the dirty component's shape equals the original, which the
	// cold run memoized.
	back := Delta{Changed: []ChangedInstruction{{Index: 0, Instr: instrs[0]}}}
	restored, err := AssignValuesDelta(context.Background(), flipped, back, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Incremental.CacheHits == 0 {
		t.Fatalf("oscillating edit missed the comp cache: %+v", restored.Incremental)
	}
	if got, want := incrFP(restored.Alloc), incrFP(cres.Alloc); !reflect.DeepEqual(got, want) {
		t.Fatalf("flip-back allocation differs from the original")
	}
}

// TestIncrementalDeltaValidation covers the delta-API error paths: bad
// indices, conflicting edits, config mismatches, oversized instructions.
func TestIncrementalDeltaValidation(t *testing.T) {
	instrs := []Instruction{{1, 2}, {2, 3}}
	cfg := AssignConfig{K: 4}
	res, err := AssignValuesIncremental(context.Background(), instrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssignValuesDelta(context.Background(), res, Delta{Removed: []int{7}}, cfg); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, err := AssignValuesDelta(context.Background(), res, Delta{
		Removed: []int{0},
		Changed: []ChangedInstruction{{Index: 0, Instr: Instruction{1}}},
	}, cfg); err == nil {
		t.Fatal("remove+change of one index accepted")
	}
	if _, err := AssignValuesDelta(context.Background(), res, Delta{
		Added: []Instruction{{1, 2, 3, 4, 5}},
	}, cfg); err == nil {
		t.Fatal("instruction wider than K accepted")
	}
	if _, err := AssignValuesDelta(context.Background(), res, Delta{}, AssignConfig{K: 8}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, err := AssignValuesDelta(context.Background(), res, Delta{}, AssignConfig{K: 4, Strategy: STOR2}); err == nil {
		t.Fatal("non-STOR1 delta accepted")
	}
	if _, err := AssignValuesIncremental(context.Background(), instrs, AssignConfig{K: 4, Strategy: STOR3}); err == nil {
		t.Fatal("non-STOR1 incremental accepted")
	}
	if _, err := AssignValuesDelta(context.Background(), nil, Delta{}, cfg); err == nil {
		t.Fatal("nil prior result accepted")
	}
	// An empty delta is legal and must reuse everything.
	same, err := AssignValuesDelta(context.Background(), res, Delta{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same.Incremental.Dirty != 0 {
		t.Fatalf("empty delta dirtied %d components", same.Incremental.Dirty)
	}
}
