package parmem

// Multi-core scaling harness (ROADMAP item 3). BenchmarkAssignScaling sweeps
// the engine's worker-pool width over fixed workloads and reports the worker
// count and the machine's core count as metrics; `make bench-scaling` (and
// the CI smoke `make bench-scaling-smoke`) archive the rows through
// cmd/bench2json, which derives the speedup/efficiency curve from the
// workers=1 sibling of each row. Worker counts are a fixed ladder — not
// NumCPU-derived — so benchmark names, and with them the archived curve and
// the bench-diff gate, are stable across machines.
//
// The correctness side lives in scaling_test.go: every corpus here is also
// run through TestScalingWorkloadDeterminism, which pins parallel output
// bit-identical to sequential at every benchmarked pool width.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"parmem/internal/benchprog"
)

// scalingWorkerCounts is the pool-width ladder every scaling benchmark and
// determinism test sweeps. workers=1 is the sequential baseline bench2json
// computes speedups against.
var scalingWorkerCounts = []int{1, 2, 4, 8}

// scalingCorpus is one instruction-level scaling workload.
type scalingCorpus struct {
	instrs []Instruction
	cfg    AssignConfig
}

// scalingCorpora returns the assignment workloads of the scaling sweep:
//
//   - clusters: 16 disjoint circulant cliques — component-level parallelism
//     for both the coloring and the duplication pool, searches dominant.
//   - chains: 8 disjoint 400-node chain-of-cliques components — wide, sparse,
//     graph-phase dominant, still on the flat bitset.
//   - blocked3k: one 2600-node chain past the flat-bitset ceiling — the
//     blocked-representation workload (single component, so it measures the
//     representation, not the pool).
func scalingCorpora() map[string]scalingCorpus {
	unlimited := Budget{MaxBacktrackNodes: -1}
	return map[string]scalingCorpus{
		"clusters": {
			instrs: toInstructions(benchprog.ClusterInstrs(16, 14, 6)),
			cfg:    AssignConfig{K: 6, Method: Backtrack, Budget: unlimited},
		},
		"chains": {
			instrs: toInstructions(benchprog.ChainInstrs(8, 400, 4)),
			cfg:    AssignConfig{K: 8, Budget: unlimited},
		},
		"blocked3k": {
			instrs: toInstructions(benchprog.ChainInstrs(1, 2600, 4)),
			cfg:    AssignConfig{K: 8, Budget: unlimited},
		},
	}
}

// BenchmarkAssignScaling is the speedup/efficiency harness: each workload ×
// worker-count cell assigns the same input with a different pool width.
// Reported metrics: workers (the pool width of the cell) and cores
// (runtime.NumCPU() of the machine the curve was measured on — efficiency
// past the core count is not expected to hold).
func BenchmarkAssignScaling(b *testing.B) {
	cores := float64(runtime.NumCPU())
	names := []string{"clusters", "chains", "blocked3k"}
	corpora := scalingCorpora()
	for _, name := range names {
		wl := corpora[name]
		for _, workers := range scalingWorkerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				cfg := wl.cfg
				cfg.Workers = workers
				for i := 0; i < b.N; i++ {
					al, err := AssignValues(context.Background(), wl.instrs, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if al.Degraded {
						b.Fatal("scaling workload degraded under an unlimited budget")
					}
				}
				b.ReportMetric(float64(workers), "workers")
				b.ReportMetric(cores, "cores")
			})
		}
	}
	// The benchprog suite end to end: six full compiles per op, the pool
	// width applied to each compile's assignment engine.
	for _, workers := range scalingWorkerCounts {
		b.Run(fmt.Sprintf("suite/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, spec := range benchprog.All() {
					if _, err := Compile(spec.Source, Options{Modules: 8, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(cores, "cores")
		})
	}
}
