package parmem

import (
	"context"
	"strings"
	"testing"
)

const quick = `
program quick;
var a, b, c: int;
begin
  a := 2;
  b := 3;
  c := a * b + a;
end
`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(quick, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Opt.Modules != 8 || p.Opt.Units != 8 {
		t.Fatalf("defaults not applied: %+v", p.Opt)
	}
	res, err := p.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.Scalar("c")
	if !ok || c != 8 {
		t.Fatalf("c = %v, want 8", c)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("nonsense", Options{}); err == nil {
		t.Fatal("bad source must fail")
	}
	if _, err := Compile(quick, Options{Modules: 1}); err == nil {
		t.Fatal("1 module must fail")
	}
}

func TestAllocationExposed(t *testing.T) {
	p, err := Compile(quick, Options{Modules: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Alloc.SingleCopy+p.Alloc.MultiCopy == 0 {
		t.Fatal("no values allocated")
	}
	if len(p.Instructions()) == 0 {
		t.Fatal("no instructions exposed")
	}
}

func TestOptionsVariants(t *testing.T) {
	for _, opt := range []Options{
		{Strategy: STOR2},
		{Strategy: STOR3, Groups: 3},
		{Method: Backtrack},
		{DisableAtoms: true},
		{DisableRenaming: true},
		{Modules: 4, Units: 2},
	} {
		p, err := Compile(quick, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		res, err := p.Run(RunOptions{})
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if c, _ := res.Scalar("c"); c != 8 {
			t.Fatalf("%+v: c = %v, want 8", opt, c)
		}
	}
}

func TestAnalyzeTimesAndPofI(t *testing.T) {
	src, err := BenchmarkSource("FFT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(src, Options{Modules: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	times := p.AnalyzeTimes(res)
	if !(times.TMin <= times.TAve && times.TAve <= times.TMax) {
		t.Fatalf("times not ordered: %+v", times)
	}
	pof := p.PofI(res)
	sum := 0.0
	for _, x := range pof {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("p(i) sums to %v", sum)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	want := []string{"TAYLOR1", "TAYLOR2", "EXACT", "FFT", "SORT", "COLOR"}
	if len(names) != len(want) {
		t.Fatalf("benchmarks = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("benchmarks = %v, want %v", names, want)
		}
	}
	if _, err := BenchmarkSource("NOPE"); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*3 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	// The paper's headline: with STOR1, almost no duplication is needed
	// (at most one value per program was replicated in the paper).
	var stor1Multi, stor2Multi, stor3Multi int
	for _, r := range rows {
		switch r.Strategy {
		case STOR1:
			stor1Multi += r.MultiCopy
		case STOR2:
			stor2Multi += r.MultiCopy
		case STOR3:
			stor3Multi += r.MultiCopy
		}
	}
	if stor1Multi > 2 {
		t.Fatalf("STOR1 total multi-copy = %d; the paper finds almost none", stor1Multi)
	}
	// Restricted graphs duplicate at least as much in aggregate.
	if stor2Multi < stor1Multi || stor3Multi < stor1Multi {
		t.Fatalf("restricted strategies should duplicate >= STOR1: %d/%d/%d",
			stor1Multi, stor2Multi, stor3Multi)
	}
	out := FormatTable1(rows)
	for _, name := range Benchmarks() {
		if !strings.Contains(out, name) {
			t.Fatalf("formatted table missing %s:\n%s", name, out)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows, err := Table2(context.Background(), []int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*2 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		// Ratios are >= 1 and bounded: the paper reports 1.02-1.20 ave and
		// up to 1.38 max; our workloads differ but the shape must hold —
		// modest average degradation, larger worst case.
		if r.RatioAve < 1.0 || r.RatioMax < r.RatioAve {
			t.Fatalf("%s/k=%d: ratios out of order: %+v", r.Program, r.K, r)
		}
		if r.RatioAve > 2.5 {
			t.Fatalf("%s/k=%d: average ratio %f unreasonably high", r.Program, r.K, r.RatioAve)
		}
	}
	// Smaller k suffers equal or more average conflicts for each program.
	byProg := map[string]map[int]Table2Row{}
	for _, r := range rows {
		if byProg[r.Program] == nil {
			byProg[r.Program] = map[int]Table2Row{}
		}
		byProg[r.Program][r.K] = r
	}
	worse := 0
	for _, m := range byProg {
		if m[4].RatioAve >= m[8].RatioAve-1e-9 {
			worse++
		}
	}
	if worse < 4 {
		t.Fatalf("k=4 should generally conflict more than k=8; held for only %d/6 programs", worse)
	}
	out := FormatTable2(rows, []int{8, 4})
	if !strings.Contains(out, "FFT") {
		t.Fatalf("formatted table missing FFT:\n%s", out)
	}
}

func TestSpeedupsMatchPaperRange(t *testing.T) {
	rows, err := Speedups(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper reports 64%-300% speedup (1.64x-4x). Require at least
		// parallel benefit on every benchmark.
		if r.Speedup <= 1.0 {
			t.Fatalf("%s: speedup %.2f", r.Program, r.Speedup)
		}
	}
	if out := FormatSpeedups(rows); !strings.Contains(out, "SORT") {
		t.Fatalf("formatted speedups missing SORT:\n%s", out)
	}
}

func TestLayoutConstructors(t *testing.T) {
	if InterleavedLayout(8).ModuleOf(0, 9) != 1 {
		t.Fatal("interleaved")
	}
	if SingleModuleLayout(3).ModuleOf(7, 100) != 3 {
		t.Fatal("single")
	}
	if m := SkewedLayout(8).ModuleOf(1, 10); m < 0 || m >= 8 {
		t.Fatal("skewed range")
	}
}

func TestWidthSweep(t *testing.T) {
	rows, err := WidthSweep(context.Background(), "FFT", []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider machines are never slower on FFT.
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup-0.05 {
			t.Fatalf("speedup regressed with width: %+v", rows)
		}
	}
	if out := FormatWidthSweep(rows); !strings.Contains(out, "FFT") {
		t.Fatalf("format:\n%s", out)
	}
	if _, err := WidthSweep(context.Background(), "NOPE", []int{4}); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
}
