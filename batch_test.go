package parmem

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"parmem/internal/benchprog"
)

// batchSources is a small mixed corpus: every built-in benchmark program.
func batchSources() []string {
	var srcs []string
	for _, spec := range benchprog.All() {
		srcs = append(srcs, spec.Source)
	}
	return srcs
}

// TestCompileBatchMatchesSequential is the batch determinism contract:
// every batch item must be bit-identical to the same source compiled alone,
// and results must come back in input order.
func TestCompileBatchMatchesSequential(t *testing.T) {
	srcs := batchSources()
	for _, workers := range []int{1, 4} {
		opt := Options{Modules: 8, Workers: workers}
		results := CompileBatch(context.Background(), srcs, opt)
		if len(results) != len(srcs) {
			t.Fatalf("workers=%d: got %d results for %d sources", workers, len(results), len(srcs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, r.Err)
			}
			seq, err := Compile(srcs[i], opt)
			if err != nil {
				t.Fatalf("sequential compile %d: %v", i, err)
			}
			fb, fs := fingerprint(r.Program), fingerprint(seq)
			if !reflect.DeepEqual(fb, fs) {
				t.Fatalf("workers=%d item %d: batch and sequential allocations diverged\nbatch: %+v\nseq:   %+v",
					workers, i, fb, fs)
			}
		}
	}
}

// TestAssignValuesBatchMatchesSequential covers the direct-assignment batch
// entry point against per-item AssignValues calls.
func TestAssignValuesBatchMatchesSequential(t *testing.T) {
	items := [][]Instruction{
		{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}},
		{{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5}},
		{{1, 2, 5}, {2, 3, 5}, {3, 4, 5}, {1, 4, 5}, {1, 2, 4}, {2, 3, 4}},
		{{1, 2, 3, 5}, {4, 2, 3, 5}, {1, 2, 3, 4}, {4, 2, 1, 5}},
	}
	for _, method := range []Method{HittingSet, Backtrack} {
		cfg := AssignConfig{K: 4, Method: method, Workers: 2}
		results := AssignValuesBatch(context.Background(), items, cfg)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%v item %d: %v", method, i, r.Err)
			}
			seq, err := AssignValues(context.Background(), items[i], cfg)
			if err != nil {
				t.Fatalf("%v sequential assign %d: %v", method, i, err)
			}
			ab, as := r.Alloc, seq
			ab.Phases, as.Phases = nil, nil // wall-clock timings differ
			if !reflect.DeepEqual(ab, as) {
				t.Fatalf("%v item %d: batch and sequential allocations diverged\nbatch: %+v\nseq:   %+v",
					method, i, ab, as)
			}
		}
	}
}

// TestCompileBatchPerItemErrors checks that a broken source fails its own
// slot and leaves the neighbors intact.
func TestCompileBatchPerItemErrors(t *testing.T) {
	good := batchSources()[0]
	srcs := []string{good, "this is not MPL (", good}
	results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Workers: 2})
	if results[0].Err != nil || results[0].Program == nil {
		t.Fatalf("item 0 should have compiled: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("item 1 should have failed to parse")
	}
	if results[1].Program != nil {
		t.Fatal("failed item carries a Program")
	}
	if results[2].Err != nil || results[2].Program == nil {
		t.Fatalf("item 2 should have compiled: %v", results[2].Err)
	}
}

// TestCompileBatchInvalidOptions checks option validation fails every slot
// rather than panicking workers.
func TestCompileBatchInvalidOptions(t *testing.T) {
	results := CompileBatch(context.Background(), batchSources()[:2], Options{Modules: 100})
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d accepted Modules=100", i)
		}
	}
}

// TestCompileBatchCanceled checks a canceled ctx aborts every item with an
// error wrapping ErrCanceled.
func TestCompileBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := CompileBatch(ctx, batchSources(), Options{Modules: 8, Workers: 2})
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d compiled under a canceled ctx", i)
		}
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("item %d error does not wrap ErrCanceled: %v", i, r.Err)
		}
	}
}

// TestCompileBatchCancelRace cancels the context while the batch is
// mid-flight, at a sweep of different points, and checks the contract the
// daemon's batch handler depends on: every per-item result is either fully
// complete (non-nil Program, nil Err) or a clean error wrapping ErrCanceled
// — never a partial or zeroed entry, and never both fields set. Run under
// -race this also exercises the results-slice writes against the
// cancellation path.
func TestCompileBatchCancelRace(t *testing.T) {
	srcs := batchSources()
	// Pad the corpus so the batch reliably outlives the earliest cancels.
	for len(srcs) < 16 {
		srcs = append(srcs, srcs...)
	}
	for _, delay := range []time.Duration{
		0, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan []BatchResult, 1)
		go func() {
			done <- CompileBatch(ctx, srcs, Options{Modules: 8, Workers: 4})
		}()
		time.Sleep(delay)
		cancel()
		results := <-done
		if len(results) != len(srcs) {
			t.Fatalf("delay=%v: got %d results for %d sources", delay, len(results), len(srcs))
		}
		var completed int
		for i, r := range results {
			switch {
			case r.Err == nil && r.Program == nil:
				t.Fatalf("delay=%v item %d: zeroed result — neither Program nor Err", delay, i)
			case r.Err != nil && r.Program != nil:
				t.Fatalf("delay=%v item %d: partial result — both Program and Err set", delay, i)
			case r.Err != nil:
				if !errors.Is(r.Err, ErrCanceled) {
					t.Fatalf("delay=%v item %d: error does not wrap ErrCanceled: %v", delay, i, r.Err)
				}
			default:
				completed++
				// A completed item must be internally whole, identical to a
				// solo compile of the same source — not a husk that stopped
				// partway through its phases.
				if r.Program.Func == nil || r.Program.Sched == nil {
					t.Fatalf("delay=%v item %d: completed item missing IR or schedule", delay, i)
				}
				seq, err := Compile(srcs[i], Options{Modules: 8})
				if err != nil {
					t.Fatalf("sequential compile %d: %v", i, err)
				}
				if !reflect.DeepEqual(fingerprint(r.Program), fingerprint(seq)) {
					t.Fatalf("delay=%v item %d: completed-under-cancel allocation differs from solo compile", delay, i)
				}
			}
		}
		t.Logf("delay=%v: %d/%d items completed before the cancel landed", delay, completed, len(srcs))
	}
}

// TestCompileBatchEmpty checks the degenerate inputs.
func TestCompileBatchEmpty(t *testing.T) {
	if got := CompileBatch(context.Background(), nil, Options{}); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
	if got := AssignValuesBatch(context.Background(), nil, AssignConfig{K: 4}); len(got) != 0 {
		t.Fatalf("nil assign batch returned %d results", len(got))
	}
}

// TestCompileBatchSharedCache checks a shared cache carries hits across
// items: compiling the same source N times must hit the whole-assignment
// memo N-1 times.
func TestCompileBatchSharedCache(t *testing.T) {
	src := batchSources()[0]
	srcs := []string{src, src, src, src}
	cache := NewAllocCache(0)
	results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Workers: 1, Cache: cache})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits across identical batch items: %+v", st)
	}
	if ls, ok := st.Levels["assign"]; !ok || ls.Hits < int64(len(srcs)-1) {
		t.Fatalf("whole-assignment memo level missing hits: %+v", st.Levels)
	}
}

func TestBatchWorkers(t *testing.T) {
	cases := []struct{ req, n, min, max int }{
		{0, 8, 1, 8},  // GOMAXPROCS, clamped to n
		{3, 8, 3, 3},  // explicit
		{-1, 8, 1, 1}, // negative forces sequential
		{16, 4, 4, 4}, // clamped to item count
	}
	for _, c := range cases {
		got := batchWorkers(c.req, c.n)
		if got < c.min || got > c.max {
			t.Errorf("batchWorkers(%d, %d) = %d, want in [%d, %d]", c.req, c.n, got, c.min, c.max)
		}
	}
}
