package parmem

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestSamplePrograms compiles and runs every MPL file under testdata/ and
// checks its result against an independently computed expectation.
func TestSamplePrograms(t *testing.T) {
	expect := map[string]func(t *testing.T, res *Result){
		"dotprod.mpl": func(t *testing.T, res *Result) {
			want := 0.0
			for i := 0; i < 32; i++ {
				want += float64(i) * 0.5 * float64(32-i)
			}
			got, ok := res.Scalar("dot")
			if !ok || math.Abs(got-want) > 1e-9 {
				t.Fatalf("dot = %v, want %v", got, want)
			}
		},
		"matmul.mpl": func(t *testing.T, res *Result) {
			a := func(i, j int) int { return i + 2*j + 1 }
			b := func(i, j int) int { return 3*i - j + 2 }
			c, ok := res.Array("c")
			if !ok {
				t.Fatal("c missing")
			}
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					want := 0
					for k := 0; k < 6; k++ {
						want += a(i, k) * b(k, j)
					}
					if int(c[i*6+j]) != want {
						t.Fatalf("c[%d][%d] = %v, want %d", i, j, c[i*6+j], want)
					}
				}
			}
		},
		"primes.mpl": func(t *testing.T, res *Result) {
			got, ok := res.Scalar("count")
			if !ok || got != 25 {
				t.Fatalf("count = %v, want 25 primes below 100", got)
			}
		},
		"newton.mpl": func(t *testing.T, res *Result) {
			roots, ok := res.Array("roots")
			if !ok {
				t.Fatal("roots missing")
			}
			for n := 0; n < 8; n++ {
				want := math.Sqrt(float64(n + 1))
				if math.Abs(roots[n]-want) > 1e-9 {
					t.Fatalf("sqrt(%d) = %v, want %v", n+1, roots[n], want)
				}
			}
		},
	}

	files, err := filepath.Glob("testdata/*.mpl")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		file := file
		name := filepath.Base(file)
		check, ok := expect[name]
		if !ok {
			t.Fatalf("testdata program %s has no expectation registered", name)
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []Options{
				{Modules: 8},
				{Modules: 8, Unroll: 4, Optimize: true, IfConvert: true},
				{Modules: 4, Strategy: STOR3},
			} {
				p, err := Compile(string(src), opt)
				if err != nil {
					t.Fatalf("%+v: %v", opt, err)
				}
				res, err := p.Run(RunOptions{})
				if err != nil {
					t.Fatalf("%+v: %v", opt, err)
				}
				check(t, res)
			}
		})
	}
}
