package parmem

// Differential testing: random MPL programs are compiled under every
// combination of pipeline options (machine widths, strategies, unrolling,
// optimization, if-conversion, renaming and atom decomposition toggles) and
// executed; all configurations must produce identical final memory states.
// This is the strongest whole-pipeline correctness check in the repository:
// any unsound transformation, scheduling bug or allocation error shows up
// as a state divergence.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// progGen emits random valid MPL programs.
type progGen struct {
	r     *rand.Rand
	sb    strings.Builder
	depth int
	loops int // total loop variables created (bounded: w1..w16 are declared)

	activeFor []string // counted-loop variables currently in scope and in range
	allVars   []string // every loop variable created so far (usable in exprs)
}

const genArrayLen = 16

func (g *progGen) gen() string {
	g.sb.Reset()
	g.sb.WriteString("program fuzz;\n")
	g.sb.WriteString("var s0, s1, s2, s3: int;\n")
	g.sb.WriteString("var f0, f1: float;\n")
	g.sb.WriteString(fmt.Sprintf("var arr: array[%d] of int;\n", genArrayLen))
	g.sb.WriteString(fmt.Sprintf("var fa: array[%d] of float;\n", genArrayLen))
	g.sb.WriteString("var w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13, w14, w15, w16: int;\n")
	g.sb.WriteString("begin\n")
	// Seed the state deterministically so every run is nontrivial.
	g.sb.WriteString("s0 := 3; s1 := 5; s2 := 7; s3 := 11;\n")
	g.sb.WriteString("f0 := 1.5; f1 := 2.25;\n")
	g.stmts(3 + g.r.Intn(8))
	g.sb.WriteString("end\n")
	return g.sb.String()
}

func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *progGen) stmt() {
	r := g.r.Intn(10)
	switch {
	case r < 4 || g.depth >= 3 || g.loops >= 16: // cap nesting and loop count
		g.assign()
	case r < 6:
		g.ifStmt()
	case r < 8:
		g.forStmt()
	default:
		g.whileStmt()
	}
}

func (g *progGen) assign() {
	switch g.r.Intn(5) {
	case 0:
		g.sb.WriteString(fmt.Sprintf("f%d := %s;\n", g.r.Intn(2), g.floatExpr(2)))
	case 1:
		g.sb.WriteString(fmt.Sprintf("arr[%s] := %s;\n", g.index(), g.intExpr(2)))
	case 2:
		g.sb.WriteString(fmt.Sprintf("fa[%s] := %s;\n", g.index(), g.floatExpr(2)))
	default:
		g.sb.WriteString(fmt.Sprintf("s%d := %s;\n", g.r.Intn(4), g.intExpr(2)))
	}
}

func (g *progGen) ifStmt() {
	g.depth++
	g.sb.WriteString(fmt.Sprintf("if %s then\n", g.cond()))
	g.stmts(1 + g.r.Intn(3))
	if g.r.Intn(2) == 0 {
		g.sb.WriteString("else\n")
		g.stmts(1 + g.r.Intn(3))
	}
	g.sb.WriteString("end\n")
	g.depth--
}

func (g *progGen) forStmt() {
	g.depth++
	g.loops++
	v := fmt.Sprintf("i%d", g.loops)
	g.allVars = append(g.allVars, v)
	g.activeFor = append(g.activeFor, v)
	hi := 1 + g.r.Intn(genArrayLen-1)
	g.sb.WriteString(fmt.Sprintf("for %s := 0 to %d do\n", v, hi))
	g.stmts(1 + g.r.Intn(3))
	g.sb.WriteString("end\n")
	g.activeFor = g.activeFor[:len(g.activeFor)-1]
	g.depth--
}

func (g *progGen) whileStmt() {
	g.depth++
	g.loops++
	v := fmt.Sprintf("w%d", g.loops)
	g.allVars = append(g.allVars, v)
	g.sb.WriteString(fmt.Sprintf("%s := %d;\n", v, 1+g.r.Intn(6)))
	g.sb.WriteString(fmt.Sprintf("while %s > 0 do\n", v))
	g.stmts(1 + g.r.Intn(2))
	g.sb.WriteString(fmt.Sprintf("%s := %s - 1;\nend\n", v, v))
	g.depth--
}

// index yields a provably in-range array index: a literal, an in-scope
// counted-loop variable (its bound stays below the array length while the
// loop runs), or a same-variable square under a constant modulo, which is
// non-negative even for negative or overflowed values.
func (g *progGen) index() string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(genArrayLen))
	case 1:
		if len(g.activeFor) > 0 {
			return g.activeFor[g.r.Intn(len(g.activeFor))]
		}
		return fmt.Sprintf("%d", g.r.Intn(genArrayLen))
	default:
		// ((x%L)*(x%L)) % L uses the same variable twice: the factors have
		// equal sign, the product is small and non-negative.
		v := fmt.Sprintf("s%d", g.r.Intn(4))
		return fmt.Sprintf("((%s %% %d) * (%s %% %d)) %% %d", v, genArrayLen, v, genArrayLen, genArrayLen)
	}
}

func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100))
		case 1:
			return fmt.Sprintf("s%d", g.r.Intn(4))
		default:
			if len(g.allVars) > 0 {
				return g.allVars[g.r.Intn(len(g.allVars))]
			}
			return fmt.Sprintf("s%d", g.r.Intn(4))
		}
	}
	ops := []string{"+", "-", "*"}
	op := ops[g.r.Intn(len(ops))]
	if g.r.Intn(6) == 0 {
		// Constant divisors only: division can never fault.
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 2+g.r.Intn(5))
	}
	if g.r.Intn(6) == 0 {
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 3+g.r.Intn(5))
	}
	if g.r.Intn(8) == 0 {
		return fmt.Sprintf("arr[%s]", g.index())
	}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
}

func (g *progGen) floatExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.Intn(10), g.r.Intn(100))
		case 1:
			return fmt.Sprintf("f%d", g.r.Intn(2))
		default:
			return fmt.Sprintf("s%d", g.r.Intn(4)) // promotes
		}
	}
	ops := []string{"+", "-", "*"}
	if g.r.Intn(6) == 0 {
		return fmt.Sprintf("(%s / %d.0)", g.floatExpr(depth-1), 2+g.r.Intn(4))
	}
	if g.r.Intn(8) == 0 {
		return fmt.Sprintf("fa[%s]", g.index())
	}
	return fmt.Sprintf("(%s %s %s)", g.floatExpr(depth-1), ops[g.r.Intn(3)], g.floatExpr(depth-1))
}

func (g *progGen) cond() string {
	cmps := []string{"<", "<=", ">", ">=", "=", "<>"}
	return fmt.Sprintf("%s %s %s", g.intExpr(1), cmps[g.r.Intn(len(cmps))], g.intExpr(1))
}

// snapshot captures the observable final state of a run.
func snapshot(res *Result) map[string]float64 {
	out := map[string]float64{}
	for _, name := range []string{"s0", "s1", "s2", "s3", "f0", "f1"} {
		if v, ok := res.Scalar(name); ok {
			out[name] = v
		}
	}
	for _, name := range []string{"arr", "fa"} {
		if a, ok := res.Array(name); ok {
			for i, v := range a {
				out[fmt.Sprintf("%s[%d]", name, i)] = v
			}
		}
	}
	return out
}

// fuzzConfigs is the option matrix every random program must agree across.
func fuzzConfigs() []Options {
	return []Options{
		{Modules: 8},
		{Modules: 4},
		{Modules: 8, Units: 1},
		{Modules: 8, Unroll: 4},
		{Modules: 8, Optimize: true},
		{Modules: 8, IfConvert: true},
		{Modules: 8, Unroll: 4, Optimize: true, IfConvert: true},
		{Modules: 8, Strategy: STOR2},
		{Modules: 8, Strategy: STOR3, Groups: 3},
		{Modules: 8, Method: Backtrack},
		{Modules: 8, DisableRenaming: true},
		{Modules: 8, DisableAtoms: true},
		// Budget-starved configs: a one-node (resp. one-nanosecond) search
		// budget forces the hitting-set / full-replication fallbacks on any
		// phase with replication work. Degraded allocations are still
		// conflict-free, so program behavior must not change.
		{Modules: 8, Method: Backtrack, Budget: Budget{MaxBacktrackNodes: 1}},
		{Modules: 4, Method: Backtrack, Strategy: STOR2, Budget: Budget{MaxBacktrackNodes: 1}},
		{Modules: 8, Budget: Budget{MaxDuplicationTime: 1}},
	}
}

func TestDifferentialFuzz(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	configs := fuzzConfigs()
	for seed := int64(0); seed < int64(iters); seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.gen()

		var base map[string]float64
		for ci, opt := range configs {
			p, err := Compile(src, opt)
			if err != nil {
				t.Fatalf("seed %d config %d (%+v): compile: %v\n%s", seed, ci, opt, err, src)
			}
			res, err := p.Run(RunOptions{MaxWords: 5_000_000})
			if err != nil {
				t.Fatalf("seed %d config %d (%+v): run: %v\n%s", seed, ci, opt, err, src)
			}
			snap := snapshot(res)
			if ci == 0 {
				base = snap
				// Programs that overflow floats to Inf/NaN are skipped:
				// if-conversion's 0·x blend term legitimately differs on
				// non-finite values (0·Inf = NaN), which is a documented
				// caveat, not a pipeline bug.
				finite := true
				for _, v := range base {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						finite = false
						break
					}
				}
				if !finite {
					break
				}
				continue
			}
			for k, v := range base {
				got := snap[k]
				if !equalish(v, got) {
					t.Fatalf("seed %d config %d (%+v): %s = %v, want %v\n%s",
						seed, ci, opt, k, got, v, src)
				}
			}
		}
	}
}

// TestCancellationFuzz compiles random programs under contexts that cancel
// after a varying number of polls. Every outcome must be clean: either a
// successful compile (and run) or an error wrapping ErrCanceled — never a
// panic, hang or corrupted result.
func TestCancellationFuzz(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for seed := int64(0); seed < int64(iters); seed++ {
		g := &progGen{r: rand.New(rand.NewSource(1000 + seed))}
		src := g.gen()
		// Sweep the countdown so cancellation lands in different phases.
		for _, polls := range []int64{1, 2, 3, 5, 8} {
			ctx := &countdownCtx{Context: context.Background(), remaining: polls}
			opt := Options{Modules: 4, Method: Backtrack, Ctx: ctx}
			p, err := Compile(src, opt)
			if err != nil {
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("seed %d polls %d: compile failed with non-cancellation error: %v\n%s",
						seed, polls, err, src)
				}
				continue
			}
			if _, err := p.Run(RunOptions{MaxWords: 5_000_000}); err != nil && !errors.Is(err, ErrCanceled) {
				t.Fatalf("seed %d polls %d: run failed with non-cancellation error: %v\n%s",
					seed, polls, err, src)
			}
		}
	}
}

// equalish compares exactly for ints and with a tiny relative tolerance for
// floats: if-conversion re-associates float blends (c*e + (1-c)*x), which
// can differ in the last bits.
func equalish(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
