module parmem

go 1.22
