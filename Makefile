GO ?= go

.PHONY: build test check race vet staticcheck bench bench-json tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools/cmd/staticcheck when the binary is
# on PATH and skips with a note otherwise, so check works on boxes without
# it (this repo adds no tool dependencies).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector.
check: vet staticcheck race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the dense-core regression benchmarks (graph, coloring and
# duplication kernels, dense vs map ablation pairs) and archives the numbers
# — ns/op, B/op, allocs/op — as BENCH_parmem.json for diffing across
# commits.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkDenseVsMap|BenchmarkColoring|BenchmarkDuplication' \
		-benchmem ./internal/graph ./internal/coloring ./internal/duplication \
		| $(GO) run ./cmd/bench2json -o BENCH_parmem.json
	@echo wrote BENCH_parmem.json

tables:
	$(GO) run ./cmd/parmem-tables
