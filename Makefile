GO ?= go

.PHONY: build test check race vet bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector.
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

tables:
	$(GO) run ./cmd/parmem-tables
