GO ?= go

.PHONY: build test check race vet staticcheck bench bench-run bench-json bench-diff bench-scaling bench-scaling-smoke tables trace-smoke soak-smoke gateway-smoke fleet-trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools/cmd/staticcheck when the binary is
# on PATH and skips with a note otherwise, so check works on boxes without
# it (this repo adds no tool dependencies).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector.
check: vet staticcheck race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-run collects the gated benchmark set into bench.out: the dense-core
# kernels (graph, coloring, duplication — BenchmarkDense covers both the
# flat/blocked probe benches and the 10k blocked-vs-CSR one), the
# steady-state/batch throughput benchmarks of the root package, the
# multi-core scaling matrix, and the incremental-recompilation sweep (both
# without -benchmem: their rows archive the speedup curves — bench2json
# derives speedup/efficiency from the workers=1 sibling and incr_speedup
# from the /full sibling — they are not allocation-gated). Output goes to a
# file, not a pipe, so a failing `go test` fails the target instead of
# feeding a truncated stream to the converter.
bench-run:
	$(GO) test -run='^$$' -bench='BenchmarkDense|BenchmarkColoring|BenchmarkDuplication' \
		-benchmem ./internal/graph ./internal/coloring ./internal/duplication > bench.out
	$(GO) test -run='^$$' -bench='BenchmarkAssignSteadyState|BenchmarkCompileBatch' \
		-benchmem . >> bench.out
	$(GO) test -run='^$$' -bench='BenchmarkFleet' \
		-benchmem ./internal/gateway >> bench.out
	$(GO) test -run='^$$' -bench='BenchmarkAssignScaling' \
		-timeout 30m . >> bench.out
	$(GO) test -run='^$$' -bench='BenchmarkAssignIncremental' \
		-timeout 30m . >> bench.out

# bench-json archives the gated benchmark numbers — ns/op, B/op, allocs/op —
# as BENCH_parmem.json, the committed baseline bench-diff compares against.
bench-json: bench-run
	$(GO) run ./cmd/bench2json -o BENCH_parmem.json < bench.out
	@rm -f bench.out
	@echo wrote BENCH_parmem.json

# bench-diff reruns the gated benchmarks and fails when any allocs/op
# regresses more than 10% over the committed BENCH_parmem.json (or a
# baseline benchmark disappeared). The fresh numbers land in BENCH_new.json
# either way; promote them with `make bench-json` after an intentional
# change.
bench-diff: bench-run
	$(GO) run ./cmd/bench2json -baseline BENCH_parmem.json -o BENCH_new.json < bench.out
	@rm -f bench.out

# bench-scaling runs only the multi-core scaling matrix
# (BenchmarkAssignScaling: workload × workers=1,2,4,8) and writes the
# speedup/efficiency curve — bench2json derives speedup and efficiency for
# every workers=N row from its workers=1 sibling; the rows carry the
# machine's core count — to SCALING_parmem.json (per-run scratch, not
# committed; the committed curve lives in BENCH_parmem.json via bench-json).
bench-scaling:
	$(GO) test -run='^$$' -bench='BenchmarkAssignScaling' -timeout 30m . > scaling.out
	$(GO) run ./cmd/bench2json -o SCALING_parmem.json < scaling.out
	@rm -f scaling.out
	@echo wrote SCALING_parmem.json

# bench-scaling-smoke is the CI variant: workers=1 and 2 only, enough to
# prove the harness runs end to end and produce a curve artifact on the
# runner's cores without paying for the full matrix.
bench-scaling-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkAssignScaling/.*/workers=[12]$$' -timeout 30m . > scaling.out
	$(GO) run ./cmd/bench2json -o SCALING_parmem.json < scaling.out
	@rm -f scaling.out
	@echo wrote SCALING_parmem.json

tables:
	$(GO) run ./cmd/parmem-tables

# trace-smoke compiles a benchmark with full telemetry on and checks that
# the Chrome trace file and the metrics dump actually materialize — the
# end-to-end sanity pass of the observability layer (the structural
# assertions live in the test suite; this proves the shipped binaries wire
# it all up).
trace-smoke:
	$(GO) run ./cmd/parmemc -bench FFT -workers 4 -trace trace-smoke.json -metrics 2> trace-smoke.metrics
	@grep -q '"traceEvents"' trace-smoke.json || { echo "trace-smoke: no traceEvents in trace-smoke.json"; exit 1; }
	@grep -q '"name": "atom"' trace-smoke.json || { echo "trace-smoke: no atom spans in trace-smoke.json"; exit 1; }
	@grep -q 'parmem_instructions_total' trace-smoke.metrics || { echo "trace-smoke: no metrics dump"; exit 1; }
	@rm -f trace-smoke.json trace-smoke.metrics
	@echo trace-smoke OK

# soak-smoke is the end-to-end robustness pass of the daemon: boot parmemd
# on a free port, hammer it for 10 seconds with the chaos client (fault
# injection on: garbage frames, slow loris, disconnects, deadline storms,
# overload bursts), then SIGTERM it and require a clean graceful drain.
# The chaos client enforces the acceptance bar itself — >=99% availability,
# typed shedding, zero dropped in-flight responses — and the latency/
# accounting summary lands in SOAK_summary.json for CI to archive.
soak-smoke:
	$(GO) build -o bin/parmemd ./cmd/parmemd
	$(GO) build -o bin/parmemsoak ./cmd/parmemsoak
	@rm -f soak-smoke.log
	@./bin/parmemd -addr 127.0.0.1:0 2>soak-smoke.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'listening on' soak-smoke.log && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^parmemd: listening on //p' soak-smoke.log | head -1); \
	if [ -z "$$addr" ]; then echo "soak-smoke: parmemd never announced its address"; cat soak-smoke.log; kill $$pid 2>/dev/null; exit 1; fi; \
	echo "soak-smoke: daemon at $$addr"; \
	./bin/parmemsoak -addr "$$addr" -duration 10s -faults \
		-steady-ops 256 -max-allocs-per-op 500 -summary SOAK_summary.json; soak=$$?; \
	kill -TERM $$pid; wait $$pid; daemon=$$?; \
	cat soak-smoke.log; rm -f soak-smoke.log; \
	if [ $$soak -ne 0 ]; then echo "soak-smoke: soak FAILED ($$soak)"; exit $$soak; fi; \
	if [ $$daemon -ne 0 ]; then echo "soak-smoke: parmemd did not drain cleanly ($$daemon)"; exit 1; fi; \
	echo soak-smoke OK

# fleet-trace-smoke is the end-to-end distributed-tracing pass: boot two
# parmemd backends (span export + flight recorder on, 1ms latency trigger)
# behind parmemgw (span export on), soak the gateway with traced traffic —
# the chaos client checks every response echoes its request's trace id and,
# via -flight-url, that the daemons spooled at least one flight capture —
# then drain everything and merge the four per-process JSONL exports with
# parmemtrace. The merge must find at least one trace spanning 3 processes
# (client -> gateway -> daemon); the merged Chrome trace lands in
# FLEET_trace.json and one flight capture in FLEET_flight_capture.json for
# CI to archive.
fleet-trace-smoke:
	$(GO) build -o bin/parmemd ./cmd/parmemd
	$(GO) build -o bin/parmemgw ./cmd/parmemgw
	$(GO) build -o bin/parmemsoak ./cmd/parmemsoak
	$(GO) build -o bin/parmemtrace ./cmd/parmemtrace
	@rm -rf fts-flight1 fts-flight2 fts-d1.log fts-d2.log fts-gw.log \
		fts-d1.jsonl fts-d2.jsonl fts-gw.jsonl fts-client.jsonl
	@./bin/parmemd -addr 127.0.0.1:0 -telemetry-addr 127.0.0.1:0 \
		-trace fts-d1.jsonl -flight-dir fts-flight1 -flight-latency 1ms 2>fts-d1.log & \
	pid1=$$!; \
	./bin/parmemd -addr 127.0.0.1:0 -telemetry-addr 127.0.0.1:0 \
		-trace fts-d2.jsonl -flight-dir fts-flight2 -flight-latency 1ms 2>fts-d2.log & \
	pid2=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'telemetry on' fts-d1.log && grep -q 'telemetry on' fts-d2.log && break; sleep 0.1; \
	done; \
	a1=$$(sed -n 's/^parmemd: listening on //p' fts-d1.log | head -1); \
	a2=$$(sed -n 's/^parmemd: listening on //p' fts-d2.log | head -1); \
	t1=$$(sed -n 's|^parmemd: telemetry on http://\([^/]*\)/metrics.*|\1|p' fts-d1.log | head -1); \
	t2=$$(sed -n 's|^parmemd: telemetry on http://\([^/]*\)/metrics.*|\1|p' fts-d2.log | head -1); \
	if [ -z "$$a1" ] || [ -z "$$a2" ] || [ -z "$$t1" ] || [ -z "$$t2" ]; then \
		echo "fleet-trace-smoke: backends never announced"; cat fts-d1.log fts-d2.log; \
		kill $$pid1 $$pid2 2>/dev/null; exit 1; fi; \
	./bin/parmemgw -addr 127.0.0.1:0 -backends "$$a1,$$a2" -trace fts-gw.jsonl 2>fts-gw.log & \
	gwpid=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'listening on' fts-gw.log && break; sleep 0.1; \
	done; \
	gaddr=$$(sed -n 's/^parmemgw: listening on //p' fts-gw.log | head -1); \
	if [ -z "$$gaddr" ]; then echo "fleet-trace-smoke: gateway never announced"; cat fts-gw.log; \
		kill $$pid1 $$pid2 $$gwpid 2>/dev/null; exit 1; fi; \
	echo "fleet-trace-smoke: gateway at $$gaddr over $$a1 + $$a2 (flight at $$t1, $$t2)"; \
	./bin/parmemsoak -addr "$$gaddr" -duration 5s -clients 2 \
		-trace fts-client.jsonl -flight-url "http://$$t1,http://$$t2" \
		-summary FLEET_summary.json; soak=$$?; \
	kill -TERM $$gwpid; wait $$gwpid; gw=$$?; \
	kill -TERM $$pid1; wait $$pid1; b1=$$?; \
	kill -TERM $$pid2; wait $$pid2; b2=$$?; \
	cat fts-gw.log; \
	if [ $$soak -ne 0 ]; then echo "fleet-trace-smoke: soak FAILED ($$soak)"; exit $$soak; fi; \
	if [ $$gw -ne 0 ] || [ $$b1 -ne 0 ] || [ $$b2 -ne 0 ]; then \
		echo "fleet-trace-smoke: dirty drain (gw=$$gw b1=$$b1 b2=$$b2)"; exit 1; fi; \
	./bin/parmemtrace -min-processes 3 -o FLEET_trace.json \
		fts-client.jsonl fts-gw.jsonl fts-d1.jsonl fts-d2.jsonl || \
		{ echo "fleet-trace-smoke: no trace spans 3 processes"; exit 1; }; \
	capture=$$(ls fts-flight1 fts-flight2 2>/dev/null | grep '^flight-' | head -1); \
	if [ -z "$$capture" ]; then echo "fleet-trace-smoke: no flight capture spooled"; exit 1; fi; \
	cp "$$(ls fts-flight1/flight-*.json fts-flight2/flight-*.json 2>/dev/null | head -1)" FLEET_flight_capture.json; \
	rm -rf fts-flight1 fts-flight2 fts-d1.log fts-d2.log fts-gw.log \
		fts-d1.jsonl fts-d2.jsonl fts-gw.jsonl fts-client.jsonl; \
	echo fleet-trace-smoke OK

# gateway-smoke is the end-to-end fleet pass: boot two parmemd backends
# (each with a persistent -cache-dir), front them with parmemgw, soak the
# gateway with well-formed traffic, and SIGTERM one backend mid-run. The
# hash ring must fail the dead shard's keys over to the survivor without
# the client noticing: the soak enforces >=99% availability and zero
# dropped in-flight responses, then the gateway and the surviving backend
# must both drain cleanly. The accounting lands in GATEWAY_summary.json.
gateway-smoke:
	$(GO) build -o bin/parmemd ./cmd/parmemd
	$(GO) build -o bin/parmemgw ./cmd/parmemgw
	$(GO) build -o bin/parmemsoak ./cmd/parmemsoak
	@rm -rf gw-smoke-cache1 gw-smoke-cache2 gw-smoke-b1.log gw-smoke-b2.log gw-smoke-gw.log
	@./bin/parmemd -addr 127.0.0.1:0 -cache-dir gw-smoke-cache1 2>gw-smoke-b1.log & \
	pid1=$$!; \
	./bin/parmemd -addr 127.0.0.1:0 -cache-dir gw-smoke-cache2 2>gw-smoke-b2.log & \
	pid2=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'listening on' gw-smoke-b1.log && grep -q 'listening on' gw-smoke-b2.log && break; sleep 0.1; \
	done; \
	a1=$$(sed -n 's/^parmemd: listening on //p' gw-smoke-b1.log | head -1); \
	a2=$$(sed -n 's/^parmemd: listening on //p' gw-smoke-b2.log | head -1); \
	if [ -z "$$a1" ] || [ -z "$$a2" ]; then echo "gateway-smoke: backends never announced"; cat gw-smoke-b1.log gw-smoke-b2.log; kill $$pid1 $$pid2 2>/dev/null; exit 1; fi; \
	./bin/parmemgw -addr 127.0.0.1:0 -backends "$$a1,$$a2" 2>gw-smoke-gw.log & \
	gwpid=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'listening on' gw-smoke-gw.log && break; sleep 0.1; \
	done; \
	gaddr=$$(sed -n 's/^parmemgw: listening on //p' gw-smoke-gw.log | head -1); \
	if [ -z "$$gaddr" ]; then echo "gateway-smoke: gateway never announced"; cat gw-smoke-gw.log; kill $$pid1 $$pid2 $$gwpid 2>/dev/null; exit 1; fi; \
	echo "gateway-smoke: gateway at $$gaddr over $$a1 + $$a2"; \
	( sleep 4; echo "gateway-smoke: draining backend 2 mid-soak"; kill -TERM $$pid2 ) & \
	./bin/parmemsoak -addr "$$gaddr" -duration 10s -summary GATEWAY_summary.json; soak=$$?; \
	wait $$pid2; b2=$$?; \
	kill -TERM $$gwpid; wait $$gwpid; gw=$$?; \
	kill -TERM $$pid1; wait $$pid1; b1=$$?; \
	cat gw-smoke-gw.log; \
	rm -rf gw-smoke-cache1 gw-smoke-cache2 gw-smoke-b1.log gw-smoke-b2.log gw-smoke-gw.log; \
	if [ $$soak -ne 0 ]; then echo "gateway-smoke: soak FAILED ($$soak)"; exit $$soak; fi; \
	if [ $$b2 -ne 0 ]; then echo "gateway-smoke: drained backend exited dirty ($$b2)"; exit 1; fi; \
	if [ $$gw -ne 0 ]; then echo "gateway-smoke: parmemgw did not drain cleanly ($$gw)"; exit 1; fi; \
	if [ $$b1 -ne 0 ]; then echo "gateway-smoke: surviving parmemd did not drain cleanly ($$b1)"; exit 1; fi; \
	echo gateway-smoke OK
