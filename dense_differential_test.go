package parmem

// Differential testing of the dense graph core: every compilation must
// produce a bit-identical allocation whether the hot assignment phases run
// on the dense CSR/bitset snapshot (the default) or on the map-backed
// reference implementations (Options.Reference). This is the pipeline-level
// proof of the determinism contract stated on graph.Dense — unit tests pin
// the individual algorithms, this pins their composition, including the
// sequential and parallel engines.

import (
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/benchprog"
)

// allocFingerprint flattens the determinism-relevant allocation fields into
// a comparable value. Copies is a map; it compares by DeepEqual. Phase
// timings are excluded (wall-clock noise), phase names and fallbacks are
// not.
type allocFingerprint struct {
	Copies      map[int]uint64
	Unassigned  []int
	Forced      []int
	SingleCopy  int
	MultiCopy   int
	TotalCopies int
	Atoms       int
	Degraded    bool
	Phases      []string
}

func fingerprint(p *Program) allocFingerprint {
	al := p.Alloc
	fp := allocFingerprint{
		Copies:      make(map[int]uint64, len(al.Copies)),
		Unassigned:  al.Unassigned,
		Forced:      al.Forced,
		SingleCopy:  al.SingleCopy,
		MultiCopy:   al.MultiCopy,
		TotalCopies: al.TotalCopies,
		Atoms:       al.Atoms,
		Degraded:    al.Degraded,
	}
	for v, s := range al.Copies {
		fp.Copies[v] = uint64(s)
	}
	for _, ph := range al.Phases {
		fp.Phases = append(fp.Phases, ph.Phase+"/"+ph.Method+"/"+ph.Fallback)
	}
	return fp
}

// moduleLoads derives the per-module copy counts — the quantity the paper's
// tables report — as an extra, order-insensitive cross-check.
func moduleLoads(p *Program, k int) []int {
	loads := make([]int, k)
	for _, s := range p.Alloc.Copies {
		for m := 0; m < k; m++ {
			if s.Has(m) {
				loads[m]++
			}
		}
	}
	return loads
}

// denseDiffConfigs is the option matrix the dense and reference backends
// must agree across: both duplication methods, all strategies, atoms on and
// off, and the sequential and parallel engines.
func denseDiffConfigs() []Options {
	return []Options{
		{Modules: 8},
		{Modules: 4},
		{Modules: 8, Method: Backtrack},
		{Modules: 8, Strategy: STOR2},
		{Modules: 8, Strategy: STOR3, Groups: 3},
		{Modules: 8, DisableAtoms: true},
		{Modules: 8, Workers: 4},
		{Modules: 8, Method: Backtrack, Workers: 4},
	}
}

func assertSameAllocation(t *testing.T, label string, opt Options, src string) {
	t.Helper()
	optRef := opt
	optRef.Reference = true
	pd, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("%s (%+v): dense compile: %v", label, opt, err)
	}
	pr, err := Compile(src, optRef)
	if err != nil {
		t.Fatalf("%s (%+v): reference compile: %v", label, opt, err)
	}
	fd, fr := fingerprint(pd), fingerprint(pr)
	if !reflect.DeepEqual(fd, fr) {
		t.Fatalf("%s (%+v): dense and reference allocations diverged\ndense: %+v\nref:   %+v",
			label, opt, fd, fr)
	}
	k := opt.Modules
	if k == 0 {
		k = 8
	}
	if ld, lr := moduleLoads(pd, k), moduleLoads(pr, k); !reflect.DeepEqual(ld, lr) {
		t.Fatalf("%s (%+v): module loads diverged: dense %v, ref %v", label, opt, ld, lr)
	}
}

// TestDenseBackendBitIdenticalBenchmarks runs the full benchmark suite
// through every config with both backends.
func TestDenseBackendBitIdenticalBenchmarks(t *testing.T) {
	configs := denseDiffConfigs()
	if testing.Short() {
		configs = configs[:3]
	}
	for _, spec := range benchprog.All() {
		for _, opt := range configs {
			assertSameAllocation(t, spec.Name, opt, spec.Source)
		}
	}
}

// TestDenseBackendBitIdenticalFuzz does the same over random MPL programs.
func TestDenseBackendBitIdenticalFuzz(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 5
	}
	configs := denseDiffConfigs()
	for seed := int64(0); seed < int64(iters); seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed + 7000))}
		src := g.gen()
		opt := configs[int(seed)%len(configs)]
		assertSameAllocation(t, "fuzz", opt, src)
	}
}

// TestDenseBackendAssignValues covers the direct assignment entry point
// (no MPL front end) with adversarial operand sets.
func TestDenseBackendAssignValues(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 30; iter++ {
		k := 2 + r.Intn(7)
		var instrs []Instruction
		for i := 0; i < 5+r.Intn(25); i++ {
			n := 1 + r.Intn(k)
			in := make(Instruction, n)
			for j := range in {
				in[j] = r.Intn(30)
			}
			instrs = append(instrs, in)
		}
		for _, method := range []Method{HittingSet, Backtrack} {
			ad, err := AssignValues(nil, instrs, AssignConfig{K: k, Method: method})
			if err != nil {
				t.Fatalf("iter %d: dense assign: %v", iter, err)
			}
			ar, err := AssignValues(nil, instrs, AssignConfig{K: k, Method: method, Reference: true})
			if err != nil {
				t.Fatalf("iter %d: reference assign: %v", iter, err)
			}
			// Phase timings differ; compare everything else.
			ad.Phases, ar.Phases = nil, nil
			if !reflect.DeepEqual(ad, ar) {
				t.Fatalf("iter %d (k=%d %v): dense and reference allocations diverged\ndense: %+v\nref:   %+v",
					iter, k, method, ad, ar)
			}
		}
	}
}
