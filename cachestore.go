package parmem

import (
	"parmem/internal/alloccache"
	"parmem/internal/diskcache"
)

// This file is the public cache surface: CacheConfig declares the cache
// tiers a caller wants, OpenCacheStore builds them, and the CacheStore
// handle is what flows through Options.Store / AssignConfig.Store. It
// replaces hand-wiring an *AllocCache (which remains supported through
// the deprecated Cache fields): a CacheStore owns the composition of the
// in-memory memo table with the optional persistent disk tier, including
// lifecycle (Close flushes and unlocks the disk log).

// EngineVersion names the memo-compatibility generation of the engine.
// Every record the disk tier writes is keyed under it, so a cache
// directory written by an incompatible engine build reads as empty —
// never as wrong answers. Bump it whenever cache keys, entry encodings
// or the semantics behind them change.
const EngineVersion = "parmem/2026-08"

// DiskCacheStats is a snapshot of the persistent tier's counters.
type DiskCacheStats = diskcache.Stats

// CacheConfig declares the cache tiers of a CacheStore.
type CacheConfig struct {
	// MemoryEntries caps the in-memory tier's resident entries; 0 picks
	// the default capacity, negative is rejected.
	MemoryEntries int
	// DiskPath, when non-empty, adds a persistent tier: an append-log
	// cache directory at this path, created if missing, shared safely
	// across processes (one writer, any number of read-only openers).
	DiskPath string
	// MaxDiskBytes bounds the log file; exceeding it triggers compaction
	// that keeps the newest records. 0 picks the default bound.
	MaxDiskBytes int64
	// ReadOnly opens the disk tier as a snapshot: hits are served but
	// nothing is written, and no writer lock is taken.
	ReadOnly bool
}

// CacheStore is a handle on a composed cache: the in-memory memo table,
// optionally backed by a persistent disk tier. Pass it via Options.Store
// or AssignConfig.Store; it is safe for concurrent use by any number of
// compilations. Close releases the disk tier (flushing pending writes);
// a memory-only store's Close is a no-op.
type CacheStore interface {
	// Cache returns the in-memory tier, for APIs that want the raw memo
	// table (the deprecated Options.Cache path uses the same type).
	Cache() *AllocCache
	// Stats snapshots the memory tier's counters, including the
	// BackingHits/BackingMisses traffic into the disk tier.
	Stats() CacheStats
	// DiskStats snapshots the disk tier; ok is false for a memory-only
	// store.
	DiskStats() (st DiskCacheStats, ok bool)
	// Close flushes and releases the disk tier. The store must not be
	// used after Close.
	Close() error
}

// OpenCacheStore builds the cache tiers cfg declares. Invalid
// configurations return a *ConfigError; a disk path that cannot be
// created or opened returns the underlying error. When another process
// already holds the writer lock on DiskPath the store degrades to a
// read-only snapshot of the log rather than failing (see
// DiskCacheStats.Degraded).
func OpenCacheStore(cfg CacheConfig) (CacheStore, error) {
	if cfg.MemoryEntries < 0 {
		return nil, configErrf("CacheConfig.MemoryEntries", "%d: must be non-negative (0 = default capacity)", cfg.MemoryEntries)
	}
	if cfg.MaxDiskBytes < 0 {
		return nil, configErrf("CacheConfig.MaxDiskBytes", "%d: must be non-negative (0 = default bound)", cfg.MaxDiskBytes)
	}
	if cfg.DiskPath == "" && cfg.ReadOnly {
		return nil, configErrf("CacheConfig.ReadOnly", "set without DiskPath: a memory-only store has nothing to open read-only")
	}
	s := &cacheStore{mem: alloccache.New(cfg.MemoryEntries)}
	if cfg.DiskPath != "" {
		d, err := diskcache.Open(diskcache.Options{
			Dir:           cfg.DiskPath,
			MaxBytes:      cfg.MaxDiskBytes,
			EngineVersion: EngineVersion,
			ReadOnly:      cfg.ReadOnly,
		})
		if err != nil {
			return nil, err
		}
		s.disk = d
		s.mem.SetBacking(d)
	}
	return s, nil
}

type cacheStore struct {
	mem  *AllocCache
	disk *diskcache.Store
}

func (s *cacheStore) Cache() *AllocCache { return s.mem }
func (s *cacheStore) Stats() CacheStats  { return s.mem.Stats() }

func (s *cacheStore) DiskStats() (DiskCacheStats, bool) {
	if s.disk == nil {
		return DiskCacheStats{}, false
	}
	return s.disk.Stats(), true
}

func (s *cacheStore) Close() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Close()
}

// storeCache resolves the cache an API call should use: the Store's
// memory tier when one is set, else the deprecated direct Cache field.
func storeCache(store CacheStore, cache *AllocCache) *AllocCache {
	if store != nil {
		if c := store.Cache(); c != nil {
			return c
		}
	}
	return cache
}
