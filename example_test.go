package parmem_test

import (
	"context"
	"fmt"
	"log"

	"parmem"
)

// ExampleCompile compiles a small MPL program and reports its allocation.
func ExampleCompile() {
	src := `
program demo;
var a, b, c: int;
begin
  a := 2;
  b := 3;
  c := a * b + a;
end`
	ctx := context.Background()
	p, err := parmem.CompileCtx(ctx, src, parmem.Options{Modules: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d values allocated, %d replicated\n",
		p.Alloc.SingleCopy+p.Alloc.MultiCopy, p.Alloc.MultiCopy)

	res, err := p.RunCtx(ctx, parmem.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	c, _ := res.Scalar("c")
	fmt.Printf("c = %v\n", c)
	// Output:
	// 4 values allocated, 0 replicated
	// c = 8
}

// ExampleAssignValues reproduces the paper's Fig. 1: three instructions
// over five values and three memory modules admit a conflict-free
// assignment with single copies.
func ExampleAssignValues() {
	instrs := []parmem.Instruction{
		{1, 2, 4}, // V1 V2 V4
		{2, 3, 5}, // V2 V3 V5
		{2, 3, 4}, // V2 V3 V4
	}
	al, err := parmem.AssignValues(context.Background(), instrs, parmem.AssignConfig{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-copy values: %d, replicated: %d\n", al.SingleCopy, al.MultiCopy)
	for _, in := range instrs {
		fmt.Println(parmem.ConflictFree(in, al.Copies))
	}
	// Output:
	// single-copy values: 5, replicated: 0
	// true
	// true
	// true
}

// ExampleAssignValues_duplication shows the §2 example where no single-copy
// assignment exists: adding {V2 V4 V5} to Fig. 1 forces one value to be
// replicated across modules.
func ExampleAssignValues_duplication() {
	instrs := []parmem.Instruction{
		{1, 2, 4}, {2, 3, 5}, {2, 3, 4},
		{2, 4, 5}, // the instruction that breaks single-copy assignment
	}
	al, err := parmem.AssignValues(context.Background(), instrs, parmem.AssignConfig{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated values: %d\n", al.MultiCopy)
	fmt.Printf("all conflict-free: %v\n", parmem.ConflictFree(instrs[3], al.Copies))
	// Output:
	// replicated values: 1
	// all conflict-free: true
}

// ExampleProgram_AnalyzeTimes runs the paper's Table 2 analysis on a
// program with array accesses.
func ExampleProgram_AnalyzeTimes() {
	src := `
program scan;
var s: int;
var a: array[64] of int;
begin
  for i := 0 to 63 do
    a[i] := i;
  end
  s := 0;
  for i := 0 to 63 do
    s := s + a[i];
  end
end`
	ctx := context.Background()
	p, err := parmem.CompileCtx(ctx, src, parmem.Options{Modules: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunCtx(ctx, parmem.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	times := p.AnalyzeTimes(res)
	fmt.Printf("ordered: %v\n", times.TMin <= times.TAve && times.TAve <= times.TMax)
	s, _ := res.Scalar("s")
	fmt.Printf("s = %v\n", s)
	// Output:
	// ordered: true
	// s = 2016
}

// ExampleAssignValuesDelta compiles two disjoint instruction groups once,
// then recompiles after an edit touching only the first group: the second
// group's conflict component is stitched from the prior result instead of
// being recomputed, and the allocation is bit-identical to a cold
// recompile of the edited stream.
func ExampleAssignValuesDelta() {
	instrs := []parmem.Instruction{
		{1, 2, 3}, // group A
		{2, 3, 4},
		{5, 6, 7}, // group B: disjoint values, its own conflict component
		{6, 7, 8},
	}
	cfg := parmem.AssignConfig{K: 4}
	ctx := context.Background()
	base, err := parmem.AssignValuesIncremental(ctx, instrs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold: %d components\n", base.Incremental.Components)

	// Rewrite the first instruction; group B is untouched.
	res, err := parmem.AssignValuesDelta(ctx, base, parmem.Delta{
		Changed: []parmem.ChangedInstruction{{Index: 0, Instr: parmem.Instruction{1, 3, 4}}},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta: %d dirty, %d reused\n", res.Incremental.Dirty, res.Incremental.Reused)
	for _, in := range res.Instructions() {
		fmt.Println(parmem.ConflictFree(in, res.Alloc.Copies))
	}
	// Output:
	// cold: 2 components
	// delta: 1 dirty, 1 reused
	// true
	// true
	// true
	// true
}
