package parmem

import (
	"context"
	"fmt"
	"strings"

	"parmem/internal/benchprog"
	"parmem/internal/stats"
)

// Benchmarks lists the names of the paper's six test programs in Table 1
// order.
func Benchmarks() []string {
	var out []string
	for _, s := range benchprog.All() {
		out = append(out, s.Name)
	}
	return out
}

// BenchmarkSource returns the MPL source of a named benchmark.
func BenchmarkSource(name string) (string, error) {
	s, err := benchprog.ByName(name)
	if err != nil {
		return "", err
	}
	return s.Source, nil
}

// ExperimentOption adjusts the compile Options an experiment driver uses
// for every compilation it performs. The drivers recompile the benchmark
// suite many times over, so WithWorkers and WithAllocCache are the
// natural knobs: the first sizes the parallel assignment engine, the
// second lets repeated compiles of the same sources skip their coloring
// and duplication searches entirely.
type ExperimentOption func(*Options)

// WithWorkers sets Options.Workers for every compilation of an experiment
// driver run.
func WithWorkers(n int) ExperimentOption {
	return func(o *Options) { o.Workers = n }
}

// WithAllocCache shares one allocation cache across every compilation of
// an experiment driver run (and, when the same cache is passed to several
// runs, across runs).
//
// Deprecated: use WithCacheStore, which also composes the persistent
// disk tier. WithAllocCache is still honored when no store is set.
func WithAllocCache(c *AllocCache) ExperimentOption {
	return func(o *Options) { o.Cache = c }
}

// WithCacheStore shares one CacheStore (see OpenCacheStore) across every
// compilation of an experiment driver run, including its persistent disk
// tier when the store has one.
func WithCacheStore(s CacheStore) ExperimentOption {
	return func(o *Options) { o.Store = s }
}

// WithTelemetry records every compilation of an experiment driver run into
// one Recorder (see Options.Telemetry), aggregating the whole sweep's
// spans and metrics in one place.
func WithTelemetry(rec *Recorder) ExperimentOption {
	return func(o *Options) { o.Telemetry = rec }
}

// applyExperimentOptions folds driver-level options into compile Options.
func applyExperimentOptions(o Options, opts []ExperimentOption) Options {
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Table1Row reports duplication for one program under one strategy —
// the two columns of the paper's Table 1.
type Table1Row struct {
	Program    string
	Strategy   Strategy
	SingleCopy int // scalars stored once ("=1")
	MultiCopy  int // scalars replicated  (">1")
}

// Table1 reproduces the paper's Table 1: for each benchmark and each
// storage strategy, how many scalar data values needed one copy and how
// many needed several. k is the module count (the paper uses 8). A
// canceled ctx aborts with an error wrapping ErrCanceled; internal panics
// come back as *InternalError.
func Table1(ctx context.Context, k int, opts ...ExperimentOption) (rows []Table1Row, err error) {
	defer recoverPhase("table1", &err)
	for _, spec := range benchprog.All() {
		for _, strat := range []Strategy{STOR1, STOR2, STOR3} {
			p, err := CompileCtx(ctx, spec.Source, applyExperimentOptions(Options{Modules: k, Strategy: strat}, opts))
			if err != nil {
				return nil, fmt.Errorf("table1: %s/%v: %w", spec.Name, strat, err)
			}
			rows = append(rows, Table1Row{
				Program:    spec.Name,
				Strategy:   strat,
				SingleCopy: p.Alloc.SingleCopy,
				MultiCopy:  p.Alloc.MultiCopy,
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s", "")
	for _, s := range []string{"STOR1", "STOR2", "STOR3"} {
		fmt.Fprintf(&sb, " | %5s %5s", s+"=1", ">1")
	}
	sb.WriteByte('\n')
	byProg := map[string]map[Strategy]Table1Row{}
	var order []string
	for _, r := range rows {
		if byProg[r.Program] == nil {
			byProg[r.Program] = map[Strategy]Table1Row{}
			order = append(order, r.Program)
		}
		byProg[r.Program][r.Strategy] = r
	}
	for _, prog := range order {
		fmt.Fprintf(&sb, "%-9s", prog)
		for _, s := range []Strategy{STOR1, STOR2, STOR3} {
			r := byProg[prog][s]
			fmt.Fprintf(&sb, " | %5d %5d", r.SingleCopy, r.MultiCopy)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table2Row reports the array-conflict time ratios for one program and one
// machine size — a cell group of the paper's Table 2.
type Table2Row struct {
	Program  string
	K        int
	Times    Times
	RatioAve float64 // t_ave / t_min
	RatioMax float64 // t_max / t_min
	// MeasuredAve is the simulated transfer time with interleaved arrays
	// divided by t_min — the empirical counterpart of RatioAve.
	MeasuredAve float64
}

// Table2 reproduces the paper's Table 2: the predicted average and worst
// case increase in memory transfer time caused by array accesses, for each
// benchmark, at each machine size in ks (the paper uses 8 and 4).
func Table2(ctx context.Context, ks []int, opts ...ExperimentOption) (rows []Table2Row, err error) {
	defer recoverPhase("table2", &err)
	for _, spec := range benchprog.All() {
		for _, k := range ks {
			p, err := CompileCtx(ctx, spec.Source, applyExperimentOptions(Options{Modules: k}, opts))
			if err != nil {
				return nil, fmt.Errorf("table2: %s/k=%d: %w", spec.Name, k, err)
			}
			res, err := p.Run(RunOptions{})
			if err != nil {
				return nil, fmt.Errorf("table2: %s/k=%d: %w", spec.Name, k, err)
			}
			if err := checkSpec(spec, res); err != nil {
				return nil, fmt.Errorf("table2: %s/k=%d: %w", spec.Name, k, err)
			}
			times := stats.Analyze(res.Profiles, k)
			measured := 1.0
			if res.MemWords > 0 {
				measured = float64(res.TransferTime) / float64(res.MemWords)
			}
			rows = append(rows, Table2Row{
				Program:     spec.Name,
				K:           k,
				Times:       times,
				RatioAve:    times.RatioAve(),
				RatioMax:    times.RatioMax(),
				MeasuredAve: measured,
			})
		}
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows in the paper's layout.
func FormatTable2(rows []Table2Row, ks []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s", "")
	for _, k := range ks {
		fmt.Fprintf(&sb, " | k=%d: ave/min max/min (meas)", k)
	}
	sb.WriteByte('\n')
	byProg := map[string]map[int]Table2Row{}
	var order []string
	for _, r := range rows {
		if byProg[r.Program] == nil {
			byProg[r.Program] = map[int]Table2Row{}
			order = append(order, r.Program)
		}
		byProg[r.Program][r.K] = r
	}
	for _, prog := range order {
		fmt.Fprintf(&sb, "%-9s", prog)
		for _, k := range ks {
			r := byProg[prog][k]
			fmt.Fprintf(&sb, " |      %4.2f    %4.2f    (%4.2f)", r.RatioAve, r.RatioMax, r.MeasuredAve)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SpeedupRow reports parallel speedup for one benchmark (the paper reports
// 64-300%% overall speedup on the RLIW system).
type SpeedupRow struct {
	Program      string
	DynamicOps   int64
	DynamicWords int64
	Cycles       int64
	Speedup      float64 // sequential time / parallel time
}

// Speedups measures the LIW speedup of every benchmark over sequential
// execution at machine size k, with the optimizing pipeline enabled (4x
// unrolling, scalar optimization and if-conversion — the stand-ins for the
// RLIW compiler's region scheduling, which the paper's 64-300% speedups
// depend on).
func Speedups(ctx context.Context, k int, opts ...ExperimentOption) (rows []SpeedupRow, err error) {
	defer recoverPhase("speedups", &err)
	for _, spec := range benchprog.All() {
		p, err := CompileCtx(ctx, spec.Source, applyExperimentOptions(Options{Modules: k, Unroll: 4, Optimize: true, IfConvert: true}, opts))
		if err != nil {
			return nil, fmt.Errorf("speedups: %s: %w", spec.Name, err)
		}
		res, err := p.Run(RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("speedups: %s: %w", spec.Name, err)
		}
		if err := checkSpec(spec, res); err != nil {
			return nil, fmt.Errorf("speedups: %s: %w", spec.Name, err)
		}
		rows = append(rows, SpeedupRow{
			Program:      spec.Name,
			DynamicOps:   res.DynamicOps,
			DynamicWords: res.DynamicWords,
			Cycles:       res.Cycles,
			Speedup:      res.Speedup(),
		})
	}
	return rows, nil
}

// FormatSpeedups renders the speedup report.
func FormatSpeedups(rows []SpeedupRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %12s %12s %10s %9s\n", "", "seq ops", "words", "cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %12d %12d %10d %8.2fx\n",
			r.Program, r.DynamicOps, r.DynamicWords, r.Cycles, r.Speedup)
	}
	return sb.String()
}

// WidthRow reports one machine configuration of the width sweep.
type WidthRow struct {
	Program string
	K       int // modules = units
	Speedup float64
	Cycles  int64
}

// WidthSweep measures how a benchmark's speed-up scales with machine width
// (modules = units), the knob the *reconfigurable* LIW architecture
// exposes: a program is run at every width in ks with the optimizing
// pipeline. Diminishing returns show where the program's parallelism is
// exhausted.
func WidthSweep(ctx context.Context, name string, ks []int, opts ...ExperimentOption) (rows []WidthRow, err error) {
	defer recoverPhase("widthsweep", &err)
	spec, serr := benchprog.ByName(name)
	if serr != nil {
		return nil, serr
	}
	for _, k := range ks {
		p, err := CompileCtx(ctx, spec.Source, applyExperimentOptions(Options{Modules: k, Unroll: 4, Optimize: true, IfConvert: true}, opts))
		if err != nil {
			return nil, fmt.Errorf("widthsweep: %s/k=%d: %w", name, k, err)
		}
		res, err := p.Run(RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("widthsweep: %s/k=%d: %w", name, k, err)
		}
		if err := checkSpec(spec, res); err != nil {
			return nil, fmt.Errorf("widthsweep: %s/k=%d: %w", name, k, err)
		}
		rows = append(rows, WidthRow{Program: name, K: k, Speedup: res.Speedup(), Cycles: res.Cycles})
	}
	return rows, nil
}

// FormatWidthSweep renders a width sweep.
func FormatWidthSweep(rows []WidthRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %4s %10s %9s\n", "", "k", "cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %4d %10d %8.2fx\n", r.Program, r.K, r.Cycles, r.Speedup)
	}
	return sb.String()
}

// checkSpec validates a benchmark result against its semantic check.
func checkSpec(spec benchprog.Spec, res *Result) error {
	if spec.Check == nil {
		return nil
	}
	return spec.Check(res)
}
