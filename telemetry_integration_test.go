package parmem

// End-to-end telemetry contract tests: a real compile produces a
// well-formed span tree covering every pipeline phase, engine counters
// match the allocation the caller sees, batch instrumentation counts
// exactly, the Prometheus endpoint carries the cache and worker series,
// and — the other half of the zero-overhead promise — recording telemetry
// never changes what the engine computes.

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"parmem/internal/telemetry"
)

// spanIndex groups a ring's spans by name and indexes them by id.
func spanIndex(spans []*TraceSpan) (byName map[string][]*TraceSpan, byID map[uint64]*TraceSpan) {
	byName = map[string][]*TraceSpan{}
	byID = map[uint64]*TraceSpan{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.ID] = s
	}
	return
}

func TestCompileTelemetrySpans(t *testing.T) {
	src, err := BenchmarkSource("FFT")
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRingSink(1 << 16)
	rec := NewRecorder(ring)
	p, err := Compile(src, Options{Modules: 8, Workers: 4, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}

	if open := rec.OpenSpans(); open != 0 {
		t.Fatalf("open spans after compile = %d, want 0", open)
	}
	byName, byID := spanIndex(ring.Spans())
	for _, phase := range []string{"compile", "parse", "lower", "rename", "schedule", "assign", "phase", "verify"} {
		if len(byName[phase]) == 0 {
			t.Errorf("no %q span recorded", phase)
		}
	}
	// Every non-root span must point at an emitted parent, and the compile
	// span must be the single root.
	roots := 0
	for _, s := range ring.Spans() {
		if s.ParentID == 0 {
			roots++
			if s.Name != "compile" {
				t.Errorf("unexpected root span %q", s.Name)
			}
			continue
		}
		if byID[s.ParentID] == nil {
			t.Errorf("span %q references unknown parent %d", s.Name, s.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("got %d root spans, want 1", roots)
	}

	// Engine counters must agree with the allocation the caller got.
	if got := rec.Counter(telemetry.MInstructions).Value(); got != int64(len(p.Instructions())) {
		t.Fatalf("instructions counter = %d, want %d", got, len(p.Instructions()))
	}
	if got := rec.Counter(telemetry.MAtoms).Value(); got != int64(p.Alloc.Atoms) {
		t.Fatalf("atoms counter = %d, want %d", got, p.Alloc.Atoms)
	}
	// One atom coloring span per decomposed atom.
	if got := len(byName["atom"]); got != p.Alloc.Atoms {
		t.Fatalf("atom spans = %d, want %d", got, p.Alloc.Atoms)
	}
	if got := rec.Counter(telemetry.MColorings).Value(); got != int64(p.Alloc.Atoms) {
		t.Fatalf("colorings counter = %d, want %d", got, p.Alloc.Atoms)
	}
}

func TestAssignTelemetryParallelLanes(t *testing.T) {
	instrs := engineStressInstrs(8, 12, 5)
	ring := NewRingSink(1 << 16)
	rec := NewRecorder(ring)
	if _, err := AssignValues(context.Background(), instrs, AssignConfig{
		K: 5, Workers: 4, Telemetry: rec,
	}); err != nil {
		t.Fatal(err)
	}
	byName, _ := spanIndex(ring.Spans())
	offLane := 0
	for _, s := range byName["atom"] {
		if s.Lane > 0 {
			offLane++
		}
	}
	if offLane == 0 {
		t.Fatal("no atom span ran on a worker lane despite Workers=4")
	}
	if got := rec.Counter(telemetry.MPoolBusyNanos).Value(); got <= 0 {
		t.Fatalf("pool busy nanos = %d, want > 0", got)
	}
	if got := rec.Gauge(telemetry.MPoolBusyWorkers).Value(); got != 0 {
		t.Fatalf("pool busy workers = %d, want 0 after quiesce", got)
	}
}

func TestBatchTelemetryExact(t *testing.T) {
	srcs := batchSources()
	rec := NewRecorder()
	results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Workers: 4, Telemetry: rec})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if got := rec.Counter(telemetry.MBatchItems).Value(); got != int64(len(srcs)) {
		t.Fatalf("batch items = %d, want %d", got, len(srcs))
	}
	if got := rec.Gauge(telemetry.MBatchInFlight).Value(); got != 0 {
		t.Fatalf("batch in flight = %d, want 0 after the batch", got)
	}
	if open := rec.OpenSpans(); open != 0 {
		t.Fatalf("open spans = %d, want 0", open)
	}
}

// TestMetricsEndpointSeries drives a cached, parallel workload and asserts
// the scraped Prometheus text carries the cache and worker-utilization
// series the observability story promises.
func TestMetricsEndpointSeries(t *testing.T) {
	instrs := engineStressInstrs(8, 12, 5)
	rec := NewRecorder()
	cache := NewAllocCache(0)
	cfg := AssignConfig{K: 5, Workers: 4, Telemetry: rec, Cache: cache}
	for i := 0; i < 2; i++ { // second run hits the whole-assignment memo
		if _, err := AssignValues(context.Background(), instrs, cfg); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`parmem_cache_hits_total{level="assign"} 1`,
		`parmem_cache_misses_total{level=`,
		"parmem_cache_entries ",
		"parmem_pool_busy_nanos_total ",
		"parmem_pool_busy_workers 0",
		"parmem_arena_gets_total ",
		"parmem_phase_duration_us_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics text missing %q\n%s", want, out)
		}
	}
}

// TestTelemetryInvisible pins the non-interference contract: the exact
// same allocation comes out whether or not a Recorder is attached.
func TestTelemetryInvisible(t *testing.T) {
	instrs := engineStressInstrs(6, 10, 4)
	plain, err := AssignValues(context.Background(), instrs, AssignConfig{K: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(NewRingSink(1 << 16))
	traced, err := AssignValues(context.Background(), instrs, AssignConfig{K: 5, Workers: 4, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Phases carry wall-clock timings that legitimately differ; everything
	// else must be bit-identical.
	plain.Phases, traced.Phases = nil, nil
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("telemetry changed the allocation:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestCacheHitPhaseElapsed: the synthetic phase report of a
// whole-assignment cache hit must still record a wall-clock duration.
func TestCacheHitPhaseElapsed(t *testing.T) {
	instrs := engineStressInstrs(4, 8, 4)
	cache := NewAllocCache(0)
	cfg := AssignConfig{K: 5, Cache: cache}
	if _, err := AssignValues(context.Background(), instrs, cfg); err != nil {
		t.Fatal(err)
	}
	al, err := AssignValues(context.Background(), instrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Phases) != 1 || !al.Phases[0].Cached {
		t.Fatalf("second run should be a whole-assignment cache hit, got %+v", al.Phases)
	}
	if al.Phases[0].Elapsed <= 0 {
		t.Fatalf("cache-hit phase Elapsed = %v, want > 0", al.Phases[0].Elapsed)
	}
}

// BenchmarkAssignTelemetry contrasts the engine with telemetry off (the
// nil fast path the allocs/op gate protects) and fully on (ring sink plus
// metrics). Not part of the bench-diff gated set; the "on" cost is
// informational.
func BenchmarkAssignTelemetry(b *testing.B) {
	instrs := steadyInstrs()
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			assignOnce(b, instrs, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		rec := NewRecorder(NewRingSink(1 << 12))
		for i := 0; i < b.N; i++ {
			al, err := AssignValues(context.Background(), instrs, AssignConfig{
				K: 5, Method: Backtrack, Workers: 1, Telemetry: rec,
				Budget: Budget{MaxBacktrackNodes: -1},
			})
			if err != nil {
				b.Fatal(err)
			}
			if al.Degraded {
				b.Fatal("degraded under unlimited budget")
			}
		}
	})
}
