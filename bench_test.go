package parmem

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§3) and the ablations called out in DESIGN.md. Each benchmark
// reports the paper's numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows the paper does:
//
//	BenchmarkTable1/*       — multi-copy and single-copy counts per program
//	                          and strategy (Table 1)
//	BenchmarkTable2/*       — t_ave/t_min and t_max/t_min per program and
//	                          machine size (Table 2)
//	BenchmarkSpeedup/*      — overall LIW speed-up (the 64-300% claim)
//	BenchmarkFigure*        — the worked examples of Figs. 1, 3, 5, 8
//	Benchmark*Scaling       — complexity claims (§2.1, §2.2)
//	BenchmarkAblation*      — design-choice ablations
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"parmem/internal/assign"
	"parmem/internal/atoms"
	"parmem/internal/benchprog"
	"parmem/internal/cache"
	"parmem/internal/coloring"
	"parmem/internal/conflict"
	"parmem/internal/duplication"
	"parmem/internal/graph"
	"parmem/internal/stats"
)

// ---------------------------------------------------------------- Table 1

// BenchmarkTable1 regenerates Table 1: memory-module assignment of every
// benchmark program under each storage strategy, k=8. Reported metrics are
// the two columns of the paper's table.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range benchprog.All() {
		for _, strat := range []Strategy{STOR1, STOR2, STOR3} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, strat), func(b *testing.B) {
				var last *Program
				for i := 0; i < b.N; i++ {
					p, err := Compile(spec.Source, Options{Modules: 8, Strategy: strat})
					if err != nil {
						b.Fatal(err)
					}
					last = p
				}
				b.ReportMetric(float64(last.Alloc.SingleCopy), "single=1")
				b.ReportMetric(float64(last.Alloc.MultiCopy), "multi>1")
			})
		}
	}
}

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2 regenerates Table 2: execute each benchmark at k=8 and
// k=4 and report the analytic t_ave/t_min and t_max/t_min ratios plus the
// measured ratio under interleaved array placement.
func BenchmarkTable2(b *testing.B) {
	for _, spec := range benchprog.All() {
		for _, k := range []int{8, 4} {
			b.Run(fmt.Sprintf("%s/k=%d", spec.Name, k), func(b *testing.B) {
				p, err := Compile(spec.Source, Options{Modules: k})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var times Times
				var measured float64
				for i := 0; i < b.N; i++ {
					res, err := p.Run(RunOptions{})
					if err != nil {
						b.Fatal(err)
					}
					times = stats.Analyze(res.Profiles, k)
					measured = float64(res.TransferTime) / float64(res.MemWords)
				}
				b.ReportMetric(times.RatioAve(), "tave/tmin")
				b.ReportMetric(times.RatioMax(), "tmax/tmin")
				b.ReportMetric(measured, "measured")
			})
		}
	}
}

// ---------------------------------------------------------------- Speedup

// BenchmarkSpeedup reports the overall speed-up of every benchmark over
// sequential execution (the paper: 64-300%), compiled with the optimizing
// pipeline (4x unrolling, scalar optimization, if-conversion) — the same
// configuration as the Speedups experiment driver.
func BenchmarkSpeedup(b *testing.B) {
	for _, spec := range benchprog.All() {
		b.Run(spec.Name, func(b *testing.B) {
			p, err := Compile(spec.Source, Options{Modules: 8, Unroll: 4, Optimize: true, IfConvert: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sp = res.Speedup()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// ---------------------------------------------------------------- Figures

func benchFigure(b *testing.B, instrs []Instruction, k int) {
	var al Allocation
	for i := 0; i < b.N; i++ {
		var err error
		al, err = AssignValues(context.Background(), instrs, AssignConfig{K: k})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(al.MultiCopy), "replicated")
	b.ReportMetric(float64(al.TotalCopies), "copies")
}

// BenchmarkFigure1 assigns the paper's Fig. 1 instruction list (a
// conflict-free single-copy assignment exists).
func BenchmarkFigure1(b *testing.B) {
	benchFigure(b, []Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}}, 3)
}

// BenchmarkFigure3 assigns the K5 example of Fig. 3 (two values removed,
// paper solutions need 7-8 total copies).
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, []Instruction{
		{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5},
	}, 3)
}

// BenchmarkFigure5 colors the urgency-heuristic example of Fig. 5.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, []Instruction{
		{1, 2, 5}, {2, 3, 5}, {3, 4, 5}, {1, 4, 5}, {1, 2, 4}, {2, 3, 4},
	}, 3)
}

// BenchmarkFigure8 assigns the placement example of Fig. 8 (three copies of
// V4, paper solution 2).
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, []Instruction{
		{1, 2, 3, 5}, {4, 2, 3, 5}, {1, 2, 3, 4}, {4, 2, 1, 5},
	}, 4)
}

// ------------------------------------------- parallel assignment engine

// engineStressInstrs builds nclusters disjoint circulant clusters of n
// values each (instruction width w, same shape as cliqueInstrs). Each
// cluster is an independent atom for coloring and an independent connected
// component for duplication, so the input exposes exactly the parallelism
// the worker pool fans out over while every cluster individually stays
// conflict-heavy enough that the searches dominate the runtime.
func engineStressInstrs(nclusters, n, w int) []Instruction {
	out := make([]Instruction, 0, nclusters*n)
	for c := 0; c < nclusters; c++ {
		base := c * n
		for i := 0; i < n; i++ {
			var in Instruction
			for j := 0; j < w; j++ {
				in = append(in, base+1+(i+j)%n)
			}
			out = append(out, in)
		}
	}
	return out
}

func benchAssignEngine(b *testing.B, cfg AssignConfig) {
	instrs := engineStressInstrs(16, 14, 6)
	cfg.K = 6
	cfg.Method = Backtrack
	cfg.Budget = Budget{MaxBacktrackNodes: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al, err := AssignValues(context.Background(), instrs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if al.Degraded {
			b.Fatal("stress input degraded under an unlimited budget")
		}
	}
}

// BenchmarkAssignSequential pins the engine to one worker — the baseline
// the parallel and cached variants are measured against.
func BenchmarkAssignSequential(b *testing.B) {
	benchAssignEngine(b, AssignConfig{Workers: 1})
}

// BenchmarkAssignParallel uses the default pool (one worker per CPU);
// per-atom coloring and per-component duplication fan out.
func BenchmarkAssignParallel(b *testing.B) {
	benchAssignEngine(b, AssignConfig{Workers: 0})
}

// BenchmarkAssignCached shares one allocation cache across iterations:
// after the first (cold) assignment every iteration is a whole-assignment
// cache hit.
func BenchmarkAssignCached(b *testing.B) {
	benchAssignEngine(b, AssignConfig{Workers: 0, Cache: NewAllocCache(0)})
}

// ------------------------------------------------------- complexity claims

func randomConflictGraph(r *rand.Rand, n int, deg float64) *graph.Graph {
	g := graph.New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	edges := int(deg * float64(n) / 2)
	for i := 0; i < edges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdgeWeight(u, v, 1+r.Intn(3))
		}
	}
	return g
}

// BenchmarkColoringScaling exercises the O((n+e)log(n+e)) coloring claim on
// growing random graphs.
func BenchmarkColoringScaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := randomConflictGraph(rand.New(rand.NewSource(1)), n, 6)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coloring.GuptaSoffa(g, coloring.Options{K: 8})
			}
		})
	}
}

// BenchmarkAtomsScaling measures clique-separator decomposition.
func BenchmarkAtomsScaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := randomConflictGraph(rand.New(rand.NewSource(2)), n, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				atoms.Decompose(g)
			}
		})
	}
}

// syntheticConflicts builds an instruction stream whose coloring leaves
// values to replicate, to exercise the duplication strategies.
func syntheticConflicts(r *rand.Rand, nvals, ninstr, k int) ([]conflict.Instruction, map[int]int, []int) {
	var instrs []conflict.Instruction
	for i := 0; i < ninstr; i++ {
		set := map[int]bool{}
		for len(set) < k {
			set[r.Intn(nvals)] = true
		}
		var in conflict.Instruction
		for v := range set {
			in = append(in, v)
		}
		instrs = append(instrs, in)
	}
	g := conflict.Build(instrs)
	col := coloring.GuptaSoffa(g, coloring.Options{K: k})
	return instrs, col.Assign, col.Unassigned
}

// BenchmarkBacktrackScaling measures the per-instruction backtracking
// duplication (paper: O(k!·i)).
func BenchmarkBacktrackScaling(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			instrs, assigned, unassigned := syntheticConflicts(rand.New(rand.NewSource(3)), 3*k, 60, k)
			in := duplication.Input{Instrs: instrs, Assigned: assigned, Unassigned: unassigned, K: k}
			b.ResetTimer()
			var res duplication.Result
			for i := 0; i < b.N; i++ {
				res, _ = duplication.Backtrack(in)
			}
			b.ReportMetric(float64(res.NewCopies), "newcopies")
		})
	}
}

// BenchmarkHittingSetScaling measures the hitting-set duplication
// (paper: O(k·n^2k) worst case, far lower in practice).
func BenchmarkHittingSetScaling(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			instrs, assigned, unassigned := syntheticConflicts(rand.New(rand.NewSource(3)), 3*k, 60, k)
			in := duplication.Input{Instrs: instrs, Assigned: assigned, Unassigned: unassigned, K: k}
			b.ResetTimer()
			var res duplication.Result
			for i := 0; i < b.N; i++ {
				res, _ = duplication.HittingSetApproach(in)
			}
			b.ReportMetric(float64(res.NewCopies), "newcopies")
		})
	}
}

// BenchmarkMaxLoadDist measures the exact occupancy DP behind t_ave.
func BenchmarkMaxLoadDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.MaxLoadDist(8, []int{0, 2, 4}, 6)
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationAtoms compares whole-graph coloring against
// atom-by-atom coloring on the largest benchmark (COLOR).
func BenchmarkAblationAtoms(b *testing.B) {
	spec, _ := benchprog.ByName("COLOR")
	for _, disable := range []bool{false, true} {
		name := "atoms"
		if disable {
			name = "whole-graph"
		}
		b.Run(name, func(b *testing.B) {
			var p *Program
			for i := 0; i < b.N; i++ {
				var err error
				p, err = Compile(spec.Source, Options{Modules: 8, DisableAtoms: disable})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Alloc.MultiCopy), "multi>1")
		})
	}
}

// BenchmarkAblationRenaming shows the effect of definition renaming (the
// paper: renaming "would likely improve the results"). The effect is
// largest with unrolled loops: without renaming every unrolled body copy
// shares the loop variable's storage-induced dependences and serializes.
func BenchmarkAblationRenaming(b *testing.B) {
	spec, _ := benchprog.ByName("FFT")
	for _, disable := range []bool{false, true} {
		name := "renamed"
		if disable {
			name = "no-renaming"
		}
		b.Run(name, func(b *testing.B) {
			p, err := Compile(spec.Source, Options{Modules: 8, Unroll: 4, DisableRenaming: disable})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sp = res.Speedup()
			}
			b.ReportMetric(sp, "speedup")
			b.ReportMetric(float64(len(p.Sched.Words)), "words")
		})
	}
}

// BenchmarkAblationUnroll quantifies what loop unrolling buys in machine
// speed-up on FFT.
func BenchmarkAblationUnroll(b *testing.B) {
	spec, _ := benchprog.ByName("FFT")
	for _, u := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("unroll=%d", u), func(b *testing.B) {
			p, err := Compile(spec.Source, Options{Modules: 8, Unroll: u})
			if err != nil {
				b.Fatal(err)
			}
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sp = res.Speedup()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationOptimize measures what the scalar optimizer buys:
// allocated values and words with and without it (EXACT has the most
// redundant lowering temporaries).
func BenchmarkAblationOptimize(b *testing.B) {
	spec, _ := benchprog.ByName("EXACT")
	for _, enable := range []bool{false, true} {
		name := "off"
		if enable {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var p *Program
			for i := 0; i < b.N; i++ {
				var err error
				p, err = Compile(spec.Source, Options{Modules: 8, Optimize: enable})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Alloc.SingleCopy+p.Alloc.MultiCopy), "values")
			b.ReportMetric(float64(len(p.Sched.Words)), "words")
		})
	}
}

// BenchmarkAblationIfConvert measures predication on the branchiest
// benchmark (COLOR), whose hot loop is a chain of scalar conditionals.
func BenchmarkAblationIfConvert(b *testing.B) {
	spec, _ := benchprog.ByName("COLOR")
	for _, enable := range []bool{false, true} {
		name := "off"
		if enable {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			p, err := Compile(spec.Source, Options{Modules: 8, Unroll: 4, Optimize: true, IfConvert: enable})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sp = res.Speedup()
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationLayout compares array storage schemes on FFT: the
// paper's uniform assumption (interleaved), the cited skewing scheme and
// the worst case.
func BenchmarkAblationLayout(b *testing.B) {
	spec, _ := benchprog.ByName("FFT")
	p, err := Compile(spec.Source, Options{Modules: 8, Unroll: 4})
	if err != nil {
		b.Fatal(err)
	}
	layouts := map[string]Layout{
		"interleaved": InterleavedLayout(8),
		"skewed":      SkewedLayout(8),
		"single":      SingleModuleLayout(0),
	}
	for _, name := range []string{"interleaved", "skewed", "single"} {
		b.Run(name, func(b *testing.B) {
			var stalls int64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{Layout: layouts[name]})
				if err != nil {
					b.Fatal(err)
				}
				stalls = res.Stalls
			}
			b.ReportMetric(float64(stalls), "stalls")
		})
	}
}

// BenchmarkAblationMethod compares the two duplication methods on a
// conflict-heavy synthetic workload.
func BenchmarkAblationMethod(b *testing.B) {
	instrs, assigned, unassigned := syntheticConflicts(rand.New(rand.NewSource(9)), 20, 80, 6)
	in := duplication.Input{Instrs: instrs, Assigned: assigned, Unassigned: unassigned, K: 6}
	b.Run("backtrack", func(b *testing.B) {
		var res duplication.Result
		for i := 0; i < b.N; i++ {
			res, _ = duplication.Backtrack(in)
		}
		b.ReportMetric(float64(res.Copies.TotalCopies()), "copies")
	})
	b.Run("hittingset", func(b *testing.B) {
		var res duplication.Result
		for i := 0; i < b.N; i++ {
			res, _ = duplication.HittingSetApproach(in)
		}
		b.ReportMetric(float64(res.Copies.TotalCopies()), "copies")
	})
}

// BenchmarkAblationColoring compares the urgency heuristic against DSATUR
// and first-fit by values left uncolored.
func BenchmarkAblationColoring(b *testing.B) {
	g := randomConflictGraph(rand.New(rand.NewSource(11)), 300, 14)
	algos := map[string]func() coloring.Result{
		"gupta-soffa": func() coloring.Result { return coloring.GuptaSoffa(g, coloring.Options{K: 8}) },
		"dsatur":      func() coloring.Result { return coloring.DSATUR(g, 8) },
		"first-fit":   func() coloring.Result { return coloring.FirstFit(g, 8) },
	}
	for _, name := range []string{"gupta-soffa", "dsatur", "first-fit"} {
		b.Run(name, func(b *testing.B) {
			var res coloring.Result
			for i := 0; i < b.N; i++ {
				res = algos[name]()
			}
			b.ReportMetric(float64(len(res.Unassigned)), "removed")
		})
	}
}

// ------------------------------------------------------------ end to end

// BenchmarkCompile measures full-pipeline compilation of each benchmark.
func BenchmarkCompile(b *testing.B) {
	for _, spec := range benchprog.All() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(spec.Source, Options{Modules: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMachine measures raw simulation speed on the largest dynamic
// workload (COLOR).
func BenchmarkMachine(b *testing.B) {
	spec, _ := benchprog.ByName("COLOR")
	p, err := Compile(spec.Source, Options{Modules: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var words int64
	for i := 0; i < b.N; i++ {
		res, err := p.Run(RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		words = res.DynamicWords
	}
	b.ReportMetric(float64(words), "words")
}

// BenchmarkSharedCache measures the §3 shared-cache application: stall
// cycles of the paper's placement against the two baselines on a skewed
// read-only lookup workload.
func BenchmarkSharedCache(b *testing.B) {
	sys := cache.System{Caches: 8}
	tr := cache.SyntheticTrace(64, 6, 400, 123)
	paper, err := cache.Assign(tr, sys)
	if err != nil {
		b.Fatal(err)
	}
	placements := map[string]cache.Placement{
		"paper":         paper,
		"round-robin":   cache.RoundRobin(tr, sys),
		"freq-balanced": cache.FrequencyBalanced(tr, sys),
	}
	for _, name := range []string{"paper", "round-robin", "freq-balanced"} {
		b.Run(name, func(b *testing.B) {
			var st cache.Stats
			for i := 0; i < b.N; i++ {
				st = cache.Simulate(tr, placements[name], sys)
			}
			b.ReportMetric(float64(st.StallCycles), "stalls")
			b.ReportMetric(float64(st.Copies), "copies")
		})
	}
}

// BenchmarkSTOR3Groups sweeps the STOR3 group count: more groups = smaller
// graphs = faster assignment but potentially more duplication.
func BenchmarkSTOR3Groups(b *testing.B) {
	spec, _ := benchprog.ByName("EXACT")
	for _, groups := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var p *Program
			for i := 0; i < b.N; i++ {
				var err error
				p, err = Compile(spec.Source, Options{Modules: 8, Strategy: STOR3, Groups: groups})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Alloc.MultiCopy), "multi>1")
		})
	}
}

// keep assign import used even if future edits drop other references.
var _ = assign.STOR1

// BenchmarkCompileScaling measures full-pipeline cost growth with program
// size (the practical motivation for STOR2/STOR3: bounding the conflict
// graph of large programs).
func BenchmarkCompileScaling(b *testing.B) {
	for _, units := range []int{2, 8, 32} {
		src := benchprog.Synthetic(units)
		for _, strat := range []Strategy{STOR1, STOR3} {
			b.Run(fmt.Sprintf("units=%d/%s", units, strat), func(b *testing.B) {
				var p *Program
				for i := 0; i < b.N; i++ {
					var err error
					p, err = Compile(src, Options{Modules: 8, Strategy: strat})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(p.Sched.Words)), "words")
			})
		}
	}
}

// BenchmarkAblationWrites contrasts the paper's fetch-only timing model
// with the pessimistic variant that also routes result write-backs through
// the modules.
func BenchmarkAblationWrites(b *testing.B) {
	spec, _ := benchprog.ByName("TAYLOR1")
	p, err := Compile(spec.Source, Options{Modules: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, writes := range []bool{false, true} {
		name := "fetch-only"
		if writes {
			name = "with-writes"
		}
		b.Run(name, func(b *testing.B) {
			var tt int64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(RunOptions{CountWrites: writes})
				if err != nil {
					b.Fatal(err)
				}
				tt = res.TransferTime
			}
			b.ReportMetric(float64(tt), "transfer")
		})
	}
}

// BenchmarkAblationExactDuplication measures the heuristics' optimality gap
// against exhaustive search on a small conflict-heavy instance (the
// question behind the paper's Figs. 3 and 8).
func BenchmarkAblationExactDuplication(b *testing.B) {
	instrs, assigned, unassigned := syntheticConflicts(rand.New(rand.NewSource(21)), 9, 12, 3)
	if len(unassigned) > 4 {
		unassigned = unassigned[:4] // keep the exhaustive search tractable
	}
	in := duplication.Input{Instrs: instrs, Assigned: assigned, Unassigned: unassigned, K: 3}
	algos := map[string]func(duplication.Input) (duplication.Result, error){
		"exact":      duplication.ExactMinCopies,
		"hittingset": duplication.HittingSetApproach,
		"backtrack":  duplication.Backtrack,
	}
	for _, name := range []string{"exact", "hittingset", "backtrack"} {
		b.Run(name, func(b *testing.B) {
			var res duplication.Result
			for i := 0; i < b.N; i++ {
				res, _ = algos[name](in)
			}
			b.ReportMetric(float64(res.Copies.TotalCopies()), "copies")
		})
	}
}
