package parmem

// Pipeline-level coverage of the blocked-bitset boundary and the sharded
// arena machinery. The graph package proves the representations agree probe
// by probe (internal/graph/kernels_test.go); the tests here prove the
// composition: whole assignments crossing the DenseBitsetMaxN ceiling must
// be bit-identical whether the engine runs on the flat bitset, the blocked
// bitset, the CSR fallback or the map-backed reference — sequentially or
// across a worker pool — and the per-worker arena shards must hold up under
// concurrent batch traffic (run with -race via `make race` / `make check`).

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"parmem/internal/arena"
	"parmem/internal/benchprog"
	"parmem/internal/conflict"
	"parmem/internal/graph"
)

// toInstructions adapts a benchprog workload (operand lists as [][]int) to
// the public Instruction type.
func toInstructions(ops [][]int) []Instruction {
	out := make([]Instruction, len(ops))
	for i, row := range ops {
		out[i] = Instruction(row)
	}
	return out
}

// TestBlockedBitsetBoundaryPipeline sweeps single-component chain-of-cliques
// graphs across the flat-bitset ceiling (n = 2047, 2048, 2049, then ~3k) and
// requires four full assignment runs to agree bit for bit: the default
// representation (flat below the ceiling, blocked above), the forced CSR
// fallback, the map-backed reference, and the parallel engine on the default
// representation.
func TestBlockedBitsetBoundaryPipeline(t *testing.T) {
	sizes := []int{graph.DenseBitsetMaxN - 1, graph.DenseBitsetMaxN, graph.DenseBitsetMaxN + 1}
	if !testing.Short() {
		sizes = append(sizes, 3001)
	}
	for _, n := range sizes {
		instrs := toInstructions(benchprog.ChainInstrs(1, n, 4))

		// Sanity: the component really sits on the representation the sweep
		// thinks it is exercising.
		d := graph.FromGraph(conflict.Build(instrs))
		wantKind := "flat"
		if n > graph.DenseBitsetMaxN {
			wantKind = "blocked"
		}
		if got := d.BitsetKind(); got != wantKind {
			t.Fatalf("n=%d: conflict graph built as %q, want %q", n, got, wantKind)
		}

		cfg := AssignConfig{K: 8, Workers: 1, Budget: Budget{MaxBacktrackNodes: -1}}
		base, err := AssignValues(context.Background(), instrs, cfg)
		if err != nil {
			t.Fatalf("n=%d: default backend: %v", n, err)
		}
		if base.Degraded {
			t.Fatalf("n=%d: degraded under an unlimited budget", n)
		}

		restore := graph.SetBitsetCeilings(0, 0)
		csr, err := AssignValues(context.Background(), instrs, cfg)
		restore()
		if err != nil {
			t.Fatalf("n=%d: forced-CSR backend: %v", n, err)
		}

		refCfg := cfg
		refCfg.Reference = true
		ref, err := AssignValues(context.Background(), instrs, refCfg)
		if err != nil {
			t.Fatalf("n=%d: reference backend: %v", n, err)
		}

		parCfg := cfg
		parCfg.Workers = 4
		par, err := AssignValues(context.Background(), instrs, parCfg)
		if err != nil {
			t.Fatalf("n=%d: parallel engine: %v", n, err)
		}

		want := stripVolatile(base)
		for label, got := range map[string]Allocation{
			"forced-csr": csr, "reference": ref, "workers=4": par,
		} {
			if !reflect.DeepEqual(want, stripVolatile(got)) {
				t.Errorf("n=%d: %s allocation diverged from the default backend", n, label)
			}
		}
	}
}

// TestScalingWorkloadDeterminism runs the scaling benchmark's instruction
// corpora (the cluster and chain families) through the sequential and the
// parallel engine at every benchmarked pool width; allocations must match
// bit for bit. This is the correctness side of BenchmarkAssignScaling: a
// speedup that changes the answer would not count.
func TestScalingWorkloadDeterminism(t *testing.T) {
	for name, wl := range scalingCorpora() {
		cfg := wl.cfg
		cfg.Workers = 1
		seq, err := AssignValues(context.Background(), wl.instrs, cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		if seq.Degraded {
			t.Fatalf("%s: degraded under an unlimited budget", name)
		}
		for _, workers := range scalingWorkerCounts[1:] {
			cfg.Workers = workers
			par, err := AssignValues(context.Background(), wl.instrs, cfg)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(stripVolatile(seq), stripVolatile(par)) {
				t.Errorf("%s/workers=%d: allocation differs from sequential", name, workers)
			}
		}
	}
}

// TestCompileBatchShardedArenas exercises the per-worker arena shards under
// CompileBatch from both directions — item-level parallelism (many items,
// each assigned sequentially) and assignment-level parallelism (single-item
// batches whose inner engine fans out over shards), the latter hammered from
// several concurrent batch callers. Every result must match the sequential
// baseline, and the shard counters must show the sharded path actually ran.
func TestCompileBatchShardedArenas(t *testing.T) {
	srcs := batchSources()
	want := make([]*Program, len(srcs))
	for i, src := range srcs {
		p, err := Compile(src, Options{Modules: 8, Workers: 1})
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		want[i] = p
	}

	before := arena.ReadShardStats()

	results := CompileBatch(context.Background(), srcs, Options{Modules: 8, Workers: 4})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Program.Alloc.Copies, want[i].Alloc.Copies) {
			t.Errorf("batch item %d: allocation differs from sequential baseline", i)
		}
	}

	const callers = 4
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, src := range srcs {
				res := CompileBatch(context.Background(), []string{src}, Options{Modules: 8, Workers: 4})
				if err := res[0].Err; err != nil {
					t.Errorf("single-item batch %d: %v", i, err)
					continue
				}
				if !reflect.DeepEqual(res[0].Program.Alloc.Copies, want[i].Alloc.Copies) {
					t.Errorf("single-item batch %d: allocation differs from sequential baseline", i)
				}
			}
		}()
	}
	wg.Wait()

	after := arena.ReadShardStats()
	if after.ShardGets <= before.ShardGets {
		t.Errorf("shard gets did not advance (%d -> %d): parallel engine never drew worker shards",
			before.ShardGets, after.ShardGets)
	}
	if after.ShardResets < before.ShardResets {
		t.Errorf("shard resets went backwards (%d -> %d)", before.ShardResets, after.ShardResets)
	}
}
